"""Compiled STA engine: flat timing graphs with corner rescaling.

:class:`CompiledTimingGraph` flattens a dict-of-dataclass
:class:`~repro.sta.graph.TimingGraph` into integer-interned nodes and
CSR-style edge arrays with a cached topological order, then answers
every propagation question from those arrays:

- **corner rescaling** -- corner derates are scalar factors on every
  arc/wire delay, so the graph compiles *base* delays (``derate=1.0``)
  once and derives any corner by scaling.  Multi-corner ``analyze``,
  SSTA and ladder characterisation stop rebuilding the graph per
  corner.  Scaling and propagation apply the exact float operations of
  the reference path (scale each delay, then add), so results are
  bit-identical, not merely close.
- **incremental re-timing** -- when the backend or ECO annotates wire
  caps/delays on a set of nets, :meth:`refresh_wires` recomputes only
  the affected edge delays (per-edge ``net``/``arc`` metadata recorded
  at build) and re-relaxes arrivals over the affected fanout cone of
  every cached propagation state, instead of rebuilding the graph.
- **propagation-state memoisation** -- arrival/parent vectors are kept
  per ``(derate, input_arrival)``, so repeat analyses of an unchanged
  module (ECO measurement loops, per-region queries) cost one report
  construction, not a relaxation.

The graphs are cached per module in a :class:`weakref` map keyed by
(library identity, disables, instance filter, view) and invalidated by
the module mutation stamp -- the :class:`repro.netlist.index.
ConnectivityIndex` pattern -- plus a fingerprint of the wire-annotation
dicts, which mutate without bumping the stamp.

The dict-based path in :mod:`repro.sta.analysis` survives untouched as
the reference oracle; parity is enforced by tests and by the
``bench_sta_engine`` workload, which asserts identical critical delays,
critical paths and region-delay maps between backends.
"""

from __future__ import annotations

import weakref
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..liberty.model import CellKind, Library
from ..netlist.core import Module, PortDirection
from ..obs import metrics
from .graph import (
    Disable,
    Node,
    TimingGraph,
    build_timing_graph,
    compute_net_pin_load,
    node_sort_key,
    refresh_net_loads,
    wire_attr_fingerprint,
)

_NEG_INF = float("-inf")

#: per-module cap on distinct cached (disables, filter, view) variants
_MAX_VARIANTS = 32


class _PropState:
    """Arrival/parent vectors of one (derate, input_arrival) relaxation."""

    __slots__ = ("arr", "parent")

    def __init__(self, arr: List[float], parent: List[int]):
        self.arr = arr
        self.parent = parent


class CompiledTimingGraph:
    """A timing graph flattened to integer-id arrays.

    Node ids follow :meth:`TimingGraph.nodes` order and edges follow
    adjacency order, so every relaxation visits values in exactly the
    reference sequence -- the basis of bit-identical parity.
    """

    def __init__(
        self,
        graph: TimingGraph,
        module: Optional[Module] = None,
        library: Optional[Library] = None,
    ):
        self.module = module if module is not None else graph.module
        self.library = library
        self.build_derate = graph.derate
        self.broken_edge_count = len(graph.broken_edges)

        nodes = graph.nodes()
        self.nodes: List[Node] = nodes
        node_id: Dict[Node, int] = {
            node: index for index, node in enumerate(nodes)
        }
        self.node_id = node_id
        n = len(nodes)

        # ---- CSR forward edges, in adjacency order -------------------
        adj_start = [0] * (n + 1)
        adj_dst: List[int] = []
        delays: List[float] = []
        edge_nets: List[Optional[str]] = []
        edge_arcs: List[Optional[object]] = []
        for nid, node in enumerate(nodes):
            for edge in graph.adjacency.get(node, ()):
                adj_dst.append(node_id[edge.dst])
                delays.append(edge.delay)
                edge_nets.append(edge.net)
                edge_arcs.append(edge.arc)
            adj_start[nid + 1] = len(adj_dst)
        self._adj_start = adj_start
        self._adj_dst = adj_dst
        self._delay = delays
        self._edge_arc = edge_arcs

        # ---- net -> edge-id maps for incremental wire updates --------
        arc_edges: Dict[str, List[int]] = {}
        net_edges: Dict[str, List[int]] = {}
        for ei, net in enumerate(edge_nets):
            if net is None:
                continue
            if edge_arcs[ei] is not None:
                arc_edges.setdefault(net, []).append(ei)
            else:
                net_edges.setdefault(net, []).append(ei)
        self._arc_edges_by_net = arc_edges
        self._net_edges_by_net = net_edges

        # ---- launch / capture / port nodes ---------------------------
        self._launch_items: List[Tuple[int, float]] = [
            (node_id[node], delay)
            for node, delay in graph.launch_nodes.items()
        ]
        self._launch_base: Dict[int, float] = dict(self._launch_items)
        self._launch_arcs: Dict[int, List[Tuple[object, str]]] = {
            node_id[node]: list(arcs)
            for node, arcs in graph.launch_arcs.items()
        }
        launch_by_net: Dict[str, List[int]] = {}
        for nid, arcs in self._launch_arcs.items():
            for _arc, net in arcs:
                launch_by_net.setdefault(net, []).append(nid)
        self._launch_by_net = launch_by_net

        self._capture_items: List[Tuple[int, float]] = [
            (node_id[node], setup)
            for node, setup in graph.capture_nodes.items()
        ]
        self._input_ids: List[int] = sorted(
            node_id[node] for node in graph.input_nodes
        )
        self._input_id_set = frozenset(self._input_ids)

        # endpoints in deterministic node order, with their base setups
        setup_of = dict(self._capture_items)
        endpoint_nodes = set(graph.capture_nodes) | graph.output_nodes
        self._endpoints: List[Tuple[int, float]] = [
            (node_id[node], setup_of.get(node_id[node], 0.0))
            for node in sorted(endpoint_nodes, key=node_sort_key)
        ]

        # ---- topological order (Kahn, reference tie-breaking) --------
        from collections import deque

        from .analysis import TimingLoopError

        indegree = [0] * n
        for dst in adj_dst:
            indegree[dst] += 1
        queue = deque(nid for nid in range(n) if indegree[nid] == 0)
        topo: List[int] = []
        while queue:
            nid = queue.popleft()
            topo.append(nid)
            for ei in range(adj_start[nid], adj_start[nid + 1]):
                dst = adj_dst[ei]
                indegree[dst] -= 1
                if indegree[dst] == 0:
                    queue.append(dst)
        if len(topo) != n:
            raise TimingLoopError(
                f"timing graph has {n - len(topo)} nodes in cycles"
            )
        self._topo = topo
        topo_pos = [0] * n
        for pos, nid in enumerate(topo):
            topo_pos[nid] = pos
        self._topo_pos = topo_pos

        # reverse in-edges per node, sorted by forward encounter order
        # (source topo position, then edge id) so recompute-by-in-edges
        # resolves ties exactly like forward relaxation
        rin: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        for src in range(n):
            for ei in range(adj_start[src], adj_start[src + 1]):
                rin[adj_dst[ei]].append((src, ei))
        for entries in rin:
            entries.sort(key=lambda se: (topo_pos[se[0]], se[1]))
        self._rin = rin

        # ---- wire-annotation snapshots for diffing -------------------
        attrs = self.module.attributes
        self._wire_caps: Dict[str, float] = dict(
            attrs.get("net_wire_cap", {})
        )
        self._wire_delays: Dict[str, float] = dict(
            attrs.get("net_wire_delay", {})
        )

        # ---- memoised per-corner products ----------------------------
        self._scaled: Dict[float, List[float]] = {}
        self._states: Dict[Tuple[float, float], _PropState] = {}
        self._reports: Dict[Tuple[float, float, Optional[float]], Any] = {}
        self._ssta_reports: Dict[Tuple[float, float, float], Any] = {}
        metrics.counter("sta.compiled.builds").inc()

    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        return len(self._adj_dst)

    def capture_items(self, derate: float) -> List[Tuple[Node, float]]:
        """``(node, setup)`` pairs at a corner, in build order."""
        nodes = self.nodes
        return [
            (nodes[nid], setup * derate)
            for nid, setup in self._capture_items
        ]

    def _scaled_delays(self, derate: float) -> List[float]:
        if derate == 1.0:
            return self._delay
        scaled = self._scaled.get(derate)
        if scaled is None:
            scaled = [delay * derate for delay in self._delay]
            self._scaled[derate] = scaled
        return scaled

    # ------------------------------------------------------------------
    # max-delay propagation
    # ------------------------------------------------------------------
    def _relax_full(self, derate: float, input_arrival: float) -> _PropState:
        n = len(self.nodes)
        arr = [_NEG_INF] * n
        parent = [-1] * n
        for nid, base in self._launch_items:
            value = base * derate
            if value > arr[nid]:
                arr[nid] = value
        for nid in self._input_ids:
            if input_arrival > arr[nid]:
                arr[nid] = input_arrival
        scaled = self._scaled_delays(derate)
        adj_start = self._adj_start
        adj_dst = self._adj_dst
        for nid in self._topo:
            arrival = arr[nid]
            if arrival == _NEG_INF:
                continue
            for ei in range(adj_start[nid], adj_start[nid + 1]):
                candidate = arrival + scaled[ei]
                dst = adj_dst[ei]
                if candidate > arr[dst]:
                    arr[dst] = candidate
                    parent[dst] = nid
        return _PropState(arr, parent)

    def _state(self, derate: float, input_arrival: float) -> _PropState:
        key = (derate, input_arrival)
        state = self._states.get(key)
        if state is None:
            state = self._relax_full(derate, input_arrival)
            self._states[key] = state
        return state

    def propagate(
        self,
        derate: float = 1.0,
        input_arrival: float = 0.0,
        clock_period: Optional[float] = None,
    ):
        """Max-delay propagation at a corner derate.

        Returns a :class:`repro.sta.analysis.StaReport` identical to the
        reference backend's.  Reports are memoised per query and shared
        between callers -- treat them as read-only.
        """
        from .analysis import PathPoint, StaReport

        report_key = (derate, input_arrival, clock_period)
        report = self._reports.get(report_key)
        if report is not None:
            metrics.counter("sta.compiled.report_hits").inc()
            return report
        state = self._state(derate, input_arrival)
        arr = state.arr
        parent = state.parent
        nodes = self.nodes

        arrivals = {
            nodes[nid]: arrival
            for nid, arrival in enumerate(arr)
            if arrival != _NEG_INF
        }
        worst_id = -1
        worst_delay = 0.0
        endpoint_slacks: Dict[Node, float] = {}
        for nid, base_setup in self._endpoints:
            arrival = arr[nid]
            if arrival == _NEG_INF:
                continue
            total = arrival + base_setup * derate
            if total > worst_delay:
                worst_delay = total
                worst_id = nid
            if clock_period is not None:
                endpoint_slacks[nodes[nid]] = clock_period - total

        path: List[PathPoint] = []
        nid = worst_id
        while nid >= 0:
            path.append(PathPoint(nodes[nid], arr[nid]))
            nid = parent[nid]
        path.reverse()

        report = StaReport(
            arrivals=arrivals,
            critical_endpoint=nodes[worst_id] if worst_id >= 0 else None,
            critical_delay=worst_delay,
            path=path,
            endpoint_slacks=endpoint_slacks,
            broken_edge_count=self.broken_edge_count,
        )
        self._reports[report_key] = report
        metrics.counter("sta.compiled.propagations").inc()
        return report

    # ------------------------------------------------------------------
    # statistical propagation
    # ------------------------------------------------------------------
    def ssta(
        self,
        derate: float = 1.0,
        sigma_global: float = 0.08,
        sigma_local: float = 0.04,
    ):
        """First-order canonical SSTA over the flat arrays.

        Bit-identical to :func:`repro.sta.ssta.ssta_propagate` on the
        equivalent graph: same seed order, same relaxation order, same
        Clark-max call sequence.
        """
        from .ssta import SstaReport, StatArrival, statistical_max

        key = (derate, sigma_global, sigma_local)
        report = self._ssta_reports.get(key)
        if report is not None:
            metrics.counter("sta.compiled.report_hits").inc()
            return report

        n = len(self.nodes)
        arr: List[Optional[StatArrival]] = [None] * n
        for nid, base in self._launch_items:
            value = base * derate
            arr[nid] = StatArrival(
                value, value * sigma_global, (value * sigma_local) ** 2
            )
        for nid in self._input_ids:
            if arr[nid] is None:
                arr[nid] = StatArrival()
        scaled = self._scaled_delays(derate)
        adj_start = self._adj_start
        adj_dst = self._adj_dst
        for nid in self._topo:
            arrival = arr[nid]
            if arrival is None:
                continue
            for ei in range(adj_start[nid], adj_start[nid + 1]):
                candidate = arrival.plus(
                    scaled[ei], sigma_global, sigma_local
                )
                dst = adj_dst[ei]
                existing = arr[dst]
                arr[dst] = (
                    candidate
                    if existing is None
                    else statistical_max(existing, candidate)
                )

        report = SstaReport()
        nodes = self.nodes
        for nid, base_setup in self._endpoints:
            arrival = arr[nid]
            if arrival is None:
                continue
            total = StatArrival(
                arrival.mean + base_setup * derate,
                arrival.global_sens,
                arrival.local_var,
            )
            if total.mean > report.worst.mean:
                report.worst = total
                report.worst_endpoint = nodes[nid]
        report.arrivals = {
            nodes[nid]: arrival
            for nid, arrival in enumerate(arr)
            if arrival is not None
        }
        self._ssta_reports[key] = report
        metrics.counter("sta.compiled.ssta_propagations").inc()
        return report

    # ------------------------------------------------------------------
    # incremental re-timing
    # ------------------------------------------------------------------
    def refresh_wires(self) -> int:
        """Diff the module's wire annotations against the build snapshot
        and re-time only the affected fanout cones.

        Returns the number of edges whose delay changed.  Requires the
        module structure to be unchanged since the build (the module
        cache checks the mutation stamp before calling this).
        """
        if self.library is None:
            raise ValueError(
                "refresh_wires needs the library the graph was built with"
            )
        attrs = self.module.attributes
        new_caps: Dict[str, float] = attrs.get("net_wire_cap", {})
        new_delays: Dict[str, float] = attrs.get("net_wire_delay", {})
        default_cap = self.library.default_wire_cap

        changed_cap_nets = [
            net
            for net in set(self._wire_caps) | set(new_caps)
            if self._wire_caps.get(net, default_cap)
            != new_caps.get(net, default_cap)
        ]
        changed_delay_nets = [
            net
            for net in set(self._wire_delays) | set(new_delays)
            if self._wire_delays.get(net, 0.0) != new_delays.get(net, 0.0)
        ]

        delays = self._delay
        build_derate = self.build_derate
        dirty_nodes: set = set()
        changed_edges = 0

        for net in changed_cap_nets:
            touched = net in self._arc_edges_by_net or net in self._launch_by_net
            if not touched:
                continue
            load = compute_net_pin_load(
                self.module,
                self.library,
                net,
                new_caps.get(net, default_cap),
            )
            for ei in self._arc_edges_by_net.get(net, ()):
                base = self._edge_arc[ei].worst_delay(load) * build_derate
                if base != delays[ei]:
                    delays[ei] = base
                    dirty_nodes.add(self._adj_dst[ei])
                    changed_edges += 1
            for nid in self._launch_by_net.get(net, ()):
                # the builder maxes against a 0.0 default -- reproduce it
                base = 0.0
                for arc, arc_net in self._launch_arcs[nid]:
                    arc_load = (
                        load
                        if arc_net == net
                        else compute_net_pin_load(
                            self.module,
                            self.library,
                            arc_net,
                            new_caps.get(arc_net, default_cap),
                        )
                    )
                    value = arc.worst_delay(arc_load) * build_derate
                    if value > base:
                        base = value
                if base != self._launch_base[nid]:
                    self._launch_base[nid] = base
                    dirty_nodes.add(nid)

        for net in changed_delay_nets:
            new_base = new_delays.get(net, 0.0) * build_derate
            for ei in self._net_edges_by_net.get(net, ()):
                if delays[ei] != new_base:
                    delays[ei] = new_base
                    dirty_nodes.add(self._adj_dst[ei])
                    changed_edges += 1

        self._wire_caps = dict(new_caps)
        self._wire_delays = dict(new_delays)
        if not dirty_nodes and not changed_edges:
            return 0

        # refresh per-corner scaled copies of the changed entries
        for derate, scaled in self._scaled.items():
            for net in changed_cap_nets:
                for ei in self._arc_edges_by_net.get(net, ()):
                    scaled[ei] = delays[ei] * derate
            for net in changed_delay_nets:
                for ei in self._net_edges_by_net.get(net, ()):
                    scaled[ei] = delays[ei] * derate

        self._launch_items = [
            (nid, self._launch_base[nid]) for nid, _ in self._launch_items
        ]
        for key, state in self._states.items():
            self._update_state(key, state, dirty_nodes)
        self._reports.clear()
        # Clark-max recomputation is not locally invertible; statistical
        # reports are recomputed lazily from the updated delays instead
        self._ssta_reports.clear()
        metrics.counter("sta.compiled.incremental_updates").inc()
        metrics.counter("sta.compiled.incremental_edges").inc(
            changed_edges
        )
        return changed_edges

    def retime_cell_swap(self, instance: str, old_cell_name: str) -> bool:
        """Re-time the graph in place after ``instance`` changed cell.

        The module already holds the new cell binding; ``old_cell_name``
        is the binding the graph was built against.  Patching succeeds
        when the swap is *structure-preserving* -- same pin names,
        directions, clock flags, cell kind and arc shape -- in which
        case only the instance's own arc/launch/capture entries and the
        loads on its input nets are recomputed (in builder order, so the
        floats are bit-identical to a cold rebuild) and every cached
        propagation state is re-relaxed over the dirty cone.

        Returns ``False`` when the swap changes graph structure; the
        graph may then be partially patched and must be discarded (the
        module cache handles this by not restamping the entry, so the
        next :func:`compiled_graph` call rebuilds).
        """
        if self.library is None:
            return False
        module = self.module
        inst = module.instances.get(instance)
        if inst is None:
            return False
        lib = self.library
        old_cell = lib.cells.get(old_cell_name)
        new_cell = lib.cells.get(inst.cell)
        if (old_cell is None) != (new_cell is None):
            # cell entered or left the library view: edges appear/vanish
            return False
        if old_cell is None:
            return True  # unknown cell both before and after: no-op

        if new_cell.kind != old_cell.kind:
            return False
        if set(new_cell.pins) != set(old_cell.pins):
            return False
        for name, old_pin in old_cell.pins.items():
            new_pin = new_cell.pins[name]
            if (
                new_pin.direction != old_pin.direction
                or new_pin.is_clock != old_pin.is_clock
            ):
                return False
        if len(old_cell.arcs) != len(new_cell.arcs):
            return False
        arc_map: Dict[int, object] = {}
        for old_arc, new_arc in zip(old_cell.arcs, new_cell.arcs):
            if (old_arc.pin, old_arc.related_pin, old_arc.timing_type) != (
                new_arc.pin,
                new_arc.related_pin,
                new_arc.timing_type,
            ):
                return False
            arc_map[id(old_arc)] = new_arc

        build_derate = self.build_derate
        delays = self._delay
        adj_dst = self._adj_dst
        nodes = self.nodes
        default_cap = lib.default_wire_cap
        wire_caps = self._wire_caps
        dirty_nodes: set = set()
        changed_eids: set = set()
        load_memo: Dict[str, float] = {}

        def load_of(net: str) -> float:
            value = load_memo.get(net)
            if value is None:
                value = compute_net_pin_load(
                    module, lib, net, wire_caps.get(net, default_cap)
                )
                load_memo[net] = value
            return value

        # nets whose load moved: input pins whose capacitance differs
        changed_load = set()
        for pin_name, net in inst.pins.items():
            old_pin = old_cell.pins[pin_name]
            if old_pin.direction != PortDirection.INPUT:
                continue
            if new_cell.pins[pin_name].capacitance != old_pin.capacitance:
                changed_load.add(net)

        # (1) the instance's own combinational arc edges: swap the arc
        # objects and re-time against the (possibly unchanged) load
        for _pin, net in inst.pins.items():
            for ei in self._arc_edges_by_net.get(net, ()):
                dst = adj_dst[ei]
                if nodes[dst][0] != instance:
                    continue
                new_arc = arc_map.get(id(self._edge_arc[ei]))
                if new_arc is None:
                    return False
                self._edge_arc[ei] = new_arc
                base = new_arc.worst_delay(load_of(net)) * build_derate
                if base != delays[ei]:
                    delays[ei] = base
                    dirty_nodes.add(dst)
                    changed_eids.add(ei)

        # (2) the instance's launch arcs (sequential clock->Q)
        my_launch: List[Tuple[int, List[Tuple[object, str]]]] = []
        for nid, arcs in self._launch_arcs.items():
            if nodes[nid][0] != instance:
                continue
            swapped = []
            for arc, arc_net in arcs:
                new_arc = arc_map.get(id(arc))
                if new_arc is None:
                    return False
                swapped.append((new_arc, arc_net))
            my_launch.append((nid, swapped))
        for nid, swapped in my_launch:
            self._launch_arcs[nid] = swapped

        # (3) edges and launch bases of *other* instances on nets whose
        # load moved, plus this instance's own launch bases
        recompute_launch = {nid for nid, _ in my_launch}
        for net in sorted(changed_load):
            load = load_of(net)
            for ei in self._arc_edges_by_net.get(net, ()):
                base = self._edge_arc[ei].worst_delay(load) * build_derate
                if base != delays[ei]:
                    delays[ei] = base
                    dirty_nodes.add(adj_dst[ei])
                    changed_eids.add(ei)
            recompute_launch.update(self._launch_by_net.get(net, ()))
        for nid in sorted(recompute_launch):
            # the builder maxes against a 0.0 default -- reproduce it
            base = 0.0
            for arc, arc_net in self._launch_arcs[nid]:
                value = arc.worst_delay(load_of(arc_net)) * build_derate
                if value > base:
                    base = value
            if base != self._launch_base[nid]:
                self._launch_base[nid] = base
                dirty_nodes.add(nid)

        # (4) capture setups of a sequential instance
        endpoints_changed = False
        if old_cell.kind != CellKind.COMBINATIONAL:
            setups: Dict[str, float] = {}
            for arc in new_cell.arcs:
                if arc.timing_type.startswith("setup"):
                    value = arc.intrinsic_rise * build_derate
                    if value > setups.get(arc.pin, 0.0):
                        setups[arc.pin] = value
            for i, (nid, setup) in enumerate(self._capture_items):
                node = nodes[nid]
                if node[0] != instance:
                    continue
                new_setup = setups.get(node[1], 0.0)
                if new_setup != setup:
                    self._capture_items[i] = (nid, new_setup)
                    endpoints_changed = True
        if endpoints_changed:
            setup_of = dict(self._capture_items)
            self._endpoints = [
                (nid, setup_of.get(nid, 0.0)) for nid, _ in self._endpoints
            ]

        if not (dirty_nodes or changed_eids or endpoints_changed):
            metrics.counter("sta.compiled.cell_swaps").inc()
            return True

        for derate, scaled in self._scaled.items():
            for ei in changed_eids:
                scaled[ei] = delays[ei] * derate
        self._launch_items = [
            (nid, self._launch_base[nid]) for nid, _ in self._launch_items
        ]
        if dirty_nodes:
            for key, state in self._states.items():
                self._update_state(key, state, dirty_nodes)
        self._reports.clear()
        self._ssta_reports.clear()
        metrics.counter("sta.compiled.cell_swaps").inc()
        metrics.counter("sta.compiled.incremental_edges").inc(
            len(changed_eids)
        )
        return True

    def _update_state(
        self,
        key: Tuple[float, float],
        state: _PropState,
        dirty_init: Iterable[int],
    ) -> None:
        """Re-relax one cached state over the dirty fanout cone."""
        derate, input_arrival = key
        scaled = self._scaled_delays(derate)
        arr = state.arr
        parent = state.parent
        adj_start = self._adj_start
        adj_dst = self._adj_dst
        topo = self._topo
        topo_pos = self._topo_pos
        launch_base = self._launch_base
        input_ids = self._input_id_set
        rin = self._rin

        dirty = set(dirty_init)
        start = min(topo_pos[nid] for nid in dirty)
        for pos in range(start, len(topo)):
            nid = topo[pos]
            if nid not in dirty:
                continue
            value = _NEG_INF
            par = -1
            base = launch_base.get(nid)
            if base is not None:
                seeded = base * derate
                if seeded > value:
                    value = seeded
            if nid in input_ids and input_arrival > value:
                value = input_arrival
            for src, ei in rin[nid]:
                src_arrival = arr[src]
                if src_arrival == _NEG_INF:
                    continue
                candidate = src_arrival + scaled[ei]
                if candidate > value:
                    value = candidate
                    par = src
            if value != arr[nid]:
                arr[nid] = value
                parent[nid] = par
                for ei in range(adj_start[nid], adj_start[nid + 1]):
                    dirty.add(adj_dst[ei])
            elif par != parent[nid]:
                parent[nid] = par


def compiled_of(graph: TimingGraph) -> CompiledTimingGraph:
    """Flatten ``graph`` once and memoise the result on the instance.

    For callers that hold a :class:`TimingGraph` directly (rather than
    going through :func:`compiled_graph`): repeat propagations of the
    same graph object share one flattening.  The memo assumes the graph
    is not mutated after the first propagation -- the builder never
    mutates a returned graph.
    """
    compiled = getattr(graph, "_compiled", None)
    if compiled is None:
        compiled = CompiledTimingGraph(graph)
        graph._compiled = compiled
    return compiled


# ----------------------------------------------------------------------
# per-module compiled-graph cache
# ----------------------------------------------------------------------

class _CacheEntry:
    __slots__ = ("graph", "library", "fingerprint")

    def __init__(self, graph: CompiledTimingGraph, library: Library,
                 fingerprint: Tuple):
        self.graph = graph
        self.library = library
        self.fingerprint = fingerprint


_MODULE_CACHE: "weakref.WeakKeyDictionary[Module, Dict]" = (
    weakref.WeakKeyDictionary()
)


def _module_fingerprint(module: Module) -> Tuple:
    return (
        module.mutation_count,
        wire_attr_fingerprint(module, "net_wire_cap"),
        wire_attr_fingerprint(module, "net_wire_delay"),
    )


def _variant_key(
    library: Library,
    disables: Optional[Iterable[Disable]],
    instance_filter,
    through_sequential: bool,
) -> Tuple:
    return (
        id(library),
        frozenset(disables or ()),
        frozenset(instance_filter) if instance_filter is not None else None,
        bool(through_sequential),
    )


def compiled_graph(
    module: Module,
    library: Library,
    disables: Optional[Iterable[Disable]] = None,
    instance_filter=None,
    through_sequential: bool = False,
) -> CompiledTimingGraph:
    """The cached compiled graph of a module view (built at derate 1.0).

    Rebuilt only when the module's mutation stamp or wire-annotation
    fingerprint moves; every corner of every analysis shares the one
    build.  Distinct disables/filter/view combinations cache as
    separate variants (bounded per module).
    """
    variants = _MODULE_CACHE.get(module)
    if variants is None:
        variants = {}
        _MODULE_CACHE[module] = variants
    key = _variant_key(library, disables, instance_filter, through_sequential)
    fingerprint = _module_fingerprint(module)
    entry = variants.get(key)
    if (
        entry is not None
        and entry.library is library
        and entry.fingerprint == fingerprint
    ):
        metrics.counter("sta.compiled.cache_hits").inc()
        return entry.graph
    graph = build_timing_graph(
        module,
        library,
        disables=disables,
        instance_filter=(
            set(instance_filter) if instance_filter is not None else None
        ),
        through_sequential=through_sequential,
        derate=1.0,
    )
    compiled = CompiledTimingGraph(graph, module=module, library=library)
    if entry is None and len(variants) >= _MAX_VARIANTS:
        variants.pop(next(iter(variants)))
    variants[key] = _CacheEntry(compiled, library, fingerprint)
    return compiled


def invalidate_module(module: Module) -> None:
    """Drop every cached compiled graph of ``module``."""
    _MODULE_CACHE.pop(module, None)


def _changed_load_nets(
    module: Module, library: Library, instance: str, old_cell_name: str
) -> List[str]:
    """Nets whose capacitive load moved when ``instance`` swapped cell."""
    inst = module.instances[instance]
    old_cell = library.cells.get(old_cell_name)
    new_cell = library.cells.get(inst.cell)
    changed = set()
    for pin_name, net in inst.pins.items():
        old_pin = old_cell.pins.get(pin_name) if old_cell else None
        new_pin = new_cell.pins.get(pin_name) if new_cell else None
        old_cap = (
            old_pin.capacitance
            if old_pin is not None and old_pin.direction == PortDirection.INPUT
            else None
        )
        new_cap = (
            new_pin.capacitance
            if new_pin is not None and new_pin.direction == PortDirection.INPUT
            else None
        )
        if old_cap != new_cap:
            changed.add(net)
    return sorted(changed)


def swap_cell(
    module: Module, library: Library, instance: str, new_cell: str
) -> bool:
    """Re-bind ``instance`` to ``new_cell`` and re-time caches in place.

    The supported way to apply an ECO cell swap: performs the edit
    (binding + dirty-log record via ``Module.note_cell_change``),
    patches the per-module net-load cache, and incrementally re-times
    every live compiled graph whose structure the swap preserves --
    bit-identical to a cold rebuild, at dirty-cone cost.

    Returns ``True`` when every live graph stayed warm; ``False`` when
    at least one could not be patched and will rebuild lazily.  The
    module edit itself always happens, so correctness never depends on
    the return value.
    """
    inst = module.instances[instance]
    old_cell = inst.cell
    if old_cell == new_cell:
        return True
    old_stamp = module.mutation_count
    inst.cell = new_cell
    module.note_cell_change(instance)

    changed_nets = _changed_load_nets(module, library, instance, old_cell)
    refresh_net_loads(module, library, changed_nets)

    ok = True
    variants = _MODULE_CACHE.get(module)
    if variants:
        fingerprint = _module_fingerprint(module)
        for entry in variants.values():
            if entry.fingerprint[0] != old_stamp or entry.graph.library is None:
                continue  # already stale; rebuilds on demand
            if entry.graph.retime_cell_swap(instance, old_cell):
                entry.fingerprint = fingerprint
            else:
                ok = False
    return ok


def annotate_wires(
    module: Module,
    wire_caps: Optional[Dict[str, float]] = None,
    wire_delays: Optional[Dict[str, float]] = None,
    replace: bool = False,
) -> None:
    """Annotate wire parasitics and re-time cached graphs incrementally.

    The supported way to change ``net_wire_cap`` / ``net_wire_delay``:
    merges (or, with ``replace``, substitutes) the annotation dicts and
    walks every live compiled graph of the module, re-propagating only
    the fanout cones of the touched nets.  Writing the attributes
    directly stays correct -- the fingerprint check forces a rebuild --
    but forfeits the incremental path.
    """
    touched: set = set()
    for attr, annotation in (
        ("net_wire_cap", wire_caps),
        ("net_wire_delay", wire_delays),
    ):
        if annotation is None:
            continue
        touched.update(annotation)
        if replace or attr not in module.attributes:
            if replace:
                touched.update(module.attributes.get(attr, ()))
            module.attributes[attr] = dict(annotation)
        else:
            module.attributes[attr].update(annotation)
    if touched:
        # dirty-log the re-annotation (wire_stamp, not mutation_count:
        # the fingerprints below hash annotation content separately)
        module.note_wire_annotation(sorted(touched))

    variants = _MODULE_CACHE.get(module)
    if not variants:
        return
    fingerprint = _module_fingerprint(module)
    stamp = module.mutation_count
    for entry in variants.values():
        if entry.fingerprint[0] == stamp and entry.graph.library is not None:
            entry.graph.refresh_wires()
            entry.fingerprint = fingerprint
        # stale-stamp entries rebuild on next access via the fingerprint
