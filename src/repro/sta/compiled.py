"""Compiled STA engine: flat timing graphs with corner rescaling.

:class:`CompiledTimingGraph` flattens a dict-of-dataclass
:class:`~repro.sta.graph.TimingGraph` into integer-interned nodes and
CSR-style edge arrays with a cached topological order, then answers
every propagation question from those arrays:

- **corner rescaling** -- corner derates are scalar factors on every
  arc/wire delay, so the graph compiles *base* delays (``derate=1.0``)
  once and derives any corner by scaling.  Multi-corner ``analyze``,
  SSTA and ladder characterisation stop rebuilding the graph per
  corner.  Scaling and propagation apply the exact float operations of
  the reference path (scale each delay, then add), so results are
  bit-identical, not merely close.
- **incremental re-timing** -- when the backend or ECO annotates wire
  caps/delays on a set of nets, :meth:`refresh_wires` recomputes only
  the affected edge delays (per-edge ``net``/``arc`` metadata recorded
  at build) and re-relaxes arrivals over the affected fanout cone of
  every cached propagation state, instead of rebuilding the graph.
- **propagation-state memoisation** -- arrival/parent vectors are kept
  per ``(derate, input_arrival)``, so repeat analyses of an unchanged
  module (ECO measurement loops, per-region queries) cost one report
  construction, not a relaxation.

The graphs are cached per module in a :class:`weakref` map keyed by
(library identity, disables, instance filter, view) and invalidated by
the module mutation stamp -- the :class:`repro.netlist.index.
ConnectivityIndex` pattern -- plus a fingerprint of the wire-annotation
dicts, which mutate without bumping the stamp.

The dict-based path in :mod:`repro.sta.analysis` survives untouched as
the reference oracle; parity is enforced by tests and by the
``bench_sta_engine`` workload, which asserts identical critical delays,
critical paths and region-delay maps between backends.
"""

from __future__ import annotations

import weakref
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..liberty.model import Library
from ..netlist.core import Module
from ..obs import metrics
from .graph import (
    Disable,
    Node,
    TimingGraph,
    build_timing_graph,
    compute_net_pin_load,
    node_sort_key,
    wire_attr_fingerprint,
)

_NEG_INF = float("-inf")

#: per-module cap on distinct cached (disables, filter, view) variants
_MAX_VARIANTS = 32


class _PropState:
    """Arrival/parent vectors of one (derate, input_arrival) relaxation."""

    __slots__ = ("arr", "parent")

    def __init__(self, arr: List[float], parent: List[int]):
        self.arr = arr
        self.parent = parent


class CompiledTimingGraph:
    """A timing graph flattened to integer-id arrays.

    Node ids follow :meth:`TimingGraph.nodes` order and edges follow
    adjacency order, so every relaxation visits values in exactly the
    reference sequence -- the basis of bit-identical parity.
    """

    def __init__(
        self,
        graph: TimingGraph,
        module: Optional[Module] = None,
        library: Optional[Library] = None,
    ):
        self.module = module if module is not None else graph.module
        self.library = library
        self.build_derate = graph.derate
        self.broken_edge_count = len(graph.broken_edges)

        nodes = graph.nodes()
        self.nodes: List[Node] = nodes
        node_id: Dict[Node, int] = {
            node: index for index, node in enumerate(nodes)
        }
        self.node_id = node_id
        n = len(nodes)

        # ---- CSR forward edges, in adjacency order -------------------
        adj_start = [0] * (n + 1)
        adj_dst: List[int] = []
        delays: List[float] = []
        edge_nets: List[Optional[str]] = []
        edge_arcs: List[Optional[object]] = []
        for nid, node in enumerate(nodes):
            for edge in graph.adjacency.get(node, ()):
                adj_dst.append(node_id[edge.dst])
                delays.append(edge.delay)
                edge_nets.append(edge.net)
                edge_arcs.append(edge.arc)
            adj_start[nid + 1] = len(adj_dst)
        self._adj_start = adj_start
        self._adj_dst = adj_dst
        self._delay = delays
        self._edge_arc = edge_arcs

        # ---- net -> edge-id maps for incremental wire updates --------
        arc_edges: Dict[str, List[int]] = {}
        net_edges: Dict[str, List[int]] = {}
        for ei, net in enumerate(edge_nets):
            if net is None:
                continue
            if edge_arcs[ei] is not None:
                arc_edges.setdefault(net, []).append(ei)
            else:
                net_edges.setdefault(net, []).append(ei)
        self._arc_edges_by_net = arc_edges
        self._net_edges_by_net = net_edges

        # ---- launch / capture / port nodes ---------------------------
        self._launch_items: List[Tuple[int, float]] = [
            (node_id[node], delay)
            for node, delay in graph.launch_nodes.items()
        ]
        self._launch_base: Dict[int, float] = dict(self._launch_items)
        self._launch_arcs: Dict[int, List[Tuple[object, str]]] = {
            node_id[node]: list(arcs)
            for node, arcs in graph.launch_arcs.items()
        }
        launch_by_net: Dict[str, List[int]] = {}
        for nid, arcs in self._launch_arcs.items():
            for _arc, net in arcs:
                launch_by_net.setdefault(net, []).append(nid)
        self._launch_by_net = launch_by_net

        self._capture_items: List[Tuple[int, float]] = [
            (node_id[node], setup)
            for node, setup in graph.capture_nodes.items()
        ]
        self._input_ids: List[int] = sorted(
            node_id[node] for node in graph.input_nodes
        )
        self._input_id_set = frozenset(self._input_ids)

        # endpoints in deterministic node order, with their base setups
        setup_of = dict(self._capture_items)
        endpoint_nodes = set(graph.capture_nodes) | graph.output_nodes
        self._endpoints: List[Tuple[int, float]] = [
            (node_id[node], setup_of.get(node_id[node], 0.0))
            for node in sorted(endpoint_nodes, key=node_sort_key)
        ]

        # ---- topological order (Kahn, reference tie-breaking) --------
        from collections import deque

        from .analysis import TimingLoopError

        indegree = [0] * n
        for dst in adj_dst:
            indegree[dst] += 1
        queue = deque(nid for nid in range(n) if indegree[nid] == 0)
        topo: List[int] = []
        while queue:
            nid = queue.popleft()
            topo.append(nid)
            for ei in range(adj_start[nid], adj_start[nid + 1]):
                dst = adj_dst[ei]
                indegree[dst] -= 1
                if indegree[dst] == 0:
                    queue.append(dst)
        if len(topo) != n:
            raise TimingLoopError(
                f"timing graph has {n - len(topo)} nodes in cycles"
            )
        self._topo = topo
        topo_pos = [0] * n
        for pos, nid in enumerate(topo):
            topo_pos[nid] = pos
        self._topo_pos = topo_pos

        # reverse in-edges per node, sorted by forward encounter order
        # (source topo position, then edge id) so recompute-by-in-edges
        # resolves ties exactly like forward relaxation
        rin: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        for src in range(n):
            for ei in range(adj_start[src], adj_start[src + 1]):
                rin[adj_dst[ei]].append((src, ei))
        for entries in rin:
            entries.sort(key=lambda se: (topo_pos[se[0]], se[1]))
        self._rin = rin

        # ---- wire-annotation snapshots for diffing -------------------
        attrs = self.module.attributes
        self._wire_caps: Dict[str, float] = dict(
            attrs.get("net_wire_cap", {})
        )
        self._wire_delays: Dict[str, float] = dict(
            attrs.get("net_wire_delay", {})
        )

        # ---- memoised per-corner products ----------------------------
        self._scaled: Dict[float, List[float]] = {}
        self._states: Dict[Tuple[float, float], _PropState] = {}
        self._reports: Dict[Tuple[float, float, Optional[float]], Any] = {}
        self._ssta_reports: Dict[Tuple[float, float, float], Any] = {}
        metrics.counter("sta.compiled.builds").inc()

    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        return len(self._adj_dst)

    def capture_items(self, derate: float) -> List[Tuple[Node, float]]:
        """``(node, setup)`` pairs at a corner, in build order."""
        nodes = self.nodes
        return [
            (nodes[nid], setup * derate)
            for nid, setup in self._capture_items
        ]

    def _scaled_delays(self, derate: float) -> List[float]:
        if derate == 1.0:
            return self._delay
        scaled = self._scaled.get(derate)
        if scaled is None:
            scaled = [delay * derate for delay in self._delay]
            self._scaled[derate] = scaled
        return scaled

    # ------------------------------------------------------------------
    # max-delay propagation
    # ------------------------------------------------------------------
    def _relax_full(self, derate: float, input_arrival: float) -> _PropState:
        n = len(self.nodes)
        arr = [_NEG_INF] * n
        parent = [-1] * n
        for nid, base in self._launch_items:
            value = base * derate
            if value > arr[nid]:
                arr[nid] = value
        for nid in self._input_ids:
            if input_arrival > arr[nid]:
                arr[nid] = input_arrival
        scaled = self._scaled_delays(derate)
        adj_start = self._adj_start
        adj_dst = self._adj_dst
        for nid in self._topo:
            arrival = arr[nid]
            if arrival == _NEG_INF:
                continue
            for ei in range(adj_start[nid], adj_start[nid + 1]):
                candidate = arrival + scaled[ei]
                dst = adj_dst[ei]
                if candidate > arr[dst]:
                    arr[dst] = candidate
                    parent[dst] = nid
        return _PropState(arr, parent)

    def _state(self, derate: float, input_arrival: float) -> _PropState:
        key = (derate, input_arrival)
        state = self._states.get(key)
        if state is None:
            state = self._relax_full(derate, input_arrival)
            self._states[key] = state
        return state

    def propagate(
        self,
        derate: float = 1.0,
        input_arrival: float = 0.0,
        clock_period: Optional[float] = None,
    ):
        """Max-delay propagation at a corner derate.

        Returns a :class:`repro.sta.analysis.StaReport` identical to the
        reference backend's.  Reports are memoised per query and shared
        between callers -- treat them as read-only.
        """
        from .analysis import PathPoint, StaReport

        report_key = (derate, input_arrival, clock_period)
        report = self._reports.get(report_key)
        if report is not None:
            metrics.counter("sta.compiled.report_hits").inc()
            return report
        state = self._state(derate, input_arrival)
        arr = state.arr
        parent = state.parent
        nodes = self.nodes

        arrivals = {
            nodes[nid]: arrival
            for nid, arrival in enumerate(arr)
            if arrival != _NEG_INF
        }
        worst_id = -1
        worst_delay = 0.0
        endpoint_slacks: Dict[Node, float] = {}
        for nid, base_setup in self._endpoints:
            arrival = arr[nid]
            if arrival == _NEG_INF:
                continue
            total = arrival + base_setup * derate
            if total > worst_delay:
                worst_delay = total
                worst_id = nid
            if clock_period is not None:
                endpoint_slacks[nodes[nid]] = clock_period - total

        path: List[PathPoint] = []
        nid = worst_id
        while nid >= 0:
            path.append(PathPoint(nodes[nid], arr[nid]))
            nid = parent[nid]
        path.reverse()

        report = StaReport(
            arrivals=arrivals,
            critical_endpoint=nodes[worst_id] if worst_id >= 0 else None,
            critical_delay=worst_delay,
            path=path,
            endpoint_slacks=endpoint_slacks,
            broken_edge_count=self.broken_edge_count,
        )
        self._reports[report_key] = report
        metrics.counter("sta.compiled.propagations").inc()
        return report

    # ------------------------------------------------------------------
    # statistical propagation
    # ------------------------------------------------------------------
    def ssta(
        self,
        derate: float = 1.0,
        sigma_global: float = 0.08,
        sigma_local: float = 0.04,
    ):
        """First-order canonical SSTA over the flat arrays.

        Bit-identical to :func:`repro.sta.ssta.ssta_propagate` on the
        equivalent graph: same seed order, same relaxation order, same
        Clark-max call sequence.
        """
        from .ssta import SstaReport, StatArrival, statistical_max

        key = (derate, sigma_global, sigma_local)
        report = self._ssta_reports.get(key)
        if report is not None:
            metrics.counter("sta.compiled.report_hits").inc()
            return report

        n = len(self.nodes)
        arr: List[Optional[StatArrival]] = [None] * n
        for nid, base in self._launch_items:
            value = base * derate
            arr[nid] = StatArrival(
                value, value * sigma_global, (value * sigma_local) ** 2
            )
        for nid in self._input_ids:
            if arr[nid] is None:
                arr[nid] = StatArrival()
        scaled = self._scaled_delays(derate)
        adj_start = self._adj_start
        adj_dst = self._adj_dst
        for nid in self._topo:
            arrival = arr[nid]
            if arrival is None:
                continue
            for ei in range(adj_start[nid], adj_start[nid + 1]):
                candidate = arrival.plus(
                    scaled[ei], sigma_global, sigma_local
                )
                dst = adj_dst[ei]
                existing = arr[dst]
                arr[dst] = (
                    candidate
                    if existing is None
                    else statistical_max(existing, candidate)
                )

        report = SstaReport()
        nodes = self.nodes
        for nid, base_setup in self._endpoints:
            arrival = arr[nid]
            if arrival is None:
                continue
            total = StatArrival(
                arrival.mean + base_setup * derate,
                arrival.global_sens,
                arrival.local_var,
            )
            if total.mean > report.worst.mean:
                report.worst = total
                report.worst_endpoint = nodes[nid]
        report.arrivals = {
            nodes[nid]: arrival
            for nid, arrival in enumerate(arr)
            if arrival is not None
        }
        self._ssta_reports[key] = report
        metrics.counter("sta.compiled.ssta_propagations").inc()
        return report

    # ------------------------------------------------------------------
    # incremental re-timing
    # ------------------------------------------------------------------
    def refresh_wires(self) -> int:
        """Diff the module's wire annotations against the build snapshot
        and re-time only the affected fanout cones.

        Returns the number of edges whose delay changed.  Requires the
        module structure to be unchanged since the build (the module
        cache checks the mutation stamp before calling this).
        """
        if self.library is None:
            raise ValueError(
                "refresh_wires needs the library the graph was built with"
            )
        attrs = self.module.attributes
        new_caps: Dict[str, float] = attrs.get("net_wire_cap", {})
        new_delays: Dict[str, float] = attrs.get("net_wire_delay", {})
        default_cap = self.library.default_wire_cap

        changed_cap_nets = [
            net
            for net in set(self._wire_caps) | set(new_caps)
            if self._wire_caps.get(net, default_cap)
            != new_caps.get(net, default_cap)
        ]
        changed_delay_nets = [
            net
            for net in set(self._wire_delays) | set(new_delays)
            if self._wire_delays.get(net, 0.0) != new_delays.get(net, 0.0)
        ]

        delays = self._delay
        build_derate = self.build_derate
        dirty_nodes: set = set()
        changed_edges = 0

        for net in changed_cap_nets:
            touched = net in self._arc_edges_by_net or net in self._launch_by_net
            if not touched:
                continue
            load = compute_net_pin_load(
                self.module,
                self.library,
                net,
                new_caps.get(net, default_cap),
            )
            for ei in self._arc_edges_by_net.get(net, ()):
                base = self._edge_arc[ei].worst_delay(load) * build_derate
                if base != delays[ei]:
                    delays[ei] = base
                    dirty_nodes.add(self._adj_dst[ei])
                    changed_edges += 1
            for nid in self._launch_by_net.get(net, ()):
                # the builder maxes against a 0.0 default -- reproduce it
                base = 0.0
                for arc, arc_net in self._launch_arcs[nid]:
                    arc_load = (
                        load
                        if arc_net == net
                        else compute_net_pin_load(
                            self.module,
                            self.library,
                            arc_net,
                            new_caps.get(arc_net, default_cap),
                        )
                    )
                    value = arc.worst_delay(arc_load) * build_derate
                    if value > base:
                        base = value
                if base != self._launch_base[nid]:
                    self._launch_base[nid] = base
                    dirty_nodes.add(nid)

        for net in changed_delay_nets:
            new_base = new_delays.get(net, 0.0) * build_derate
            for ei in self._net_edges_by_net.get(net, ()):
                if delays[ei] != new_base:
                    delays[ei] = new_base
                    dirty_nodes.add(self._adj_dst[ei])
                    changed_edges += 1

        self._wire_caps = dict(new_caps)
        self._wire_delays = dict(new_delays)
        if not dirty_nodes and not changed_edges:
            return 0

        # refresh per-corner scaled copies of the changed entries
        for derate, scaled in self._scaled.items():
            for net in changed_cap_nets:
                for ei in self._arc_edges_by_net.get(net, ()):
                    scaled[ei] = delays[ei] * derate
            for net in changed_delay_nets:
                for ei in self._net_edges_by_net.get(net, ()):
                    scaled[ei] = delays[ei] * derate

        self._launch_items = [
            (nid, self._launch_base[nid]) for nid, _ in self._launch_items
        ]
        for key, state in self._states.items():
            self._update_state(key, state, dirty_nodes)
        self._reports.clear()
        # Clark-max recomputation is not locally invertible; statistical
        # reports are recomputed lazily from the updated delays instead
        self._ssta_reports.clear()
        metrics.counter("sta.compiled.incremental_updates").inc()
        metrics.counter("sta.compiled.incremental_edges").inc(
            changed_edges
        )
        return changed_edges

    def _update_state(
        self,
        key: Tuple[float, float],
        state: _PropState,
        dirty_init: Iterable[int],
    ) -> None:
        """Re-relax one cached state over the dirty fanout cone."""
        derate, input_arrival = key
        scaled = self._scaled_delays(derate)
        arr = state.arr
        parent = state.parent
        adj_start = self._adj_start
        adj_dst = self._adj_dst
        topo = self._topo
        topo_pos = self._topo_pos
        launch_base = self._launch_base
        input_ids = self._input_id_set
        rin = self._rin

        dirty = set(dirty_init)
        start = min(topo_pos[nid] for nid in dirty)
        for pos in range(start, len(topo)):
            nid = topo[pos]
            if nid not in dirty:
                continue
            value = _NEG_INF
            par = -1
            base = launch_base.get(nid)
            if base is not None:
                seeded = base * derate
                if seeded > value:
                    value = seeded
            if nid in input_ids and input_arrival > value:
                value = input_arrival
            for src, ei in rin[nid]:
                src_arrival = arr[src]
                if src_arrival == _NEG_INF:
                    continue
                candidate = src_arrival + scaled[ei]
                if candidate > value:
                    value = candidate
                    par = src
            if value != arr[nid]:
                arr[nid] = value
                parent[nid] = par
                for ei in range(adj_start[nid], adj_start[nid + 1]):
                    dirty.add(adj_dst[ei])
            elif par != parent[nid]:
                parent[nid] = par


def compiled_of(graph: TimingGraph) -> CompiledTimingGraph:
    """Flatten ``graph`` once and memoise the result on the instance.

    For callers that hold a :class:`TimingGraph` directly (rather than
    going through :func:`compiled_graph`): repeat propagations of the
    same graph object share one flattening.  The memo assumes the graph
    is not mutated after the first propagation -- the builder never
    mutates a returned graph.
    """
    compiled = getattr(graph, "_compiled", None)
    if compiled is None:
        compiled = CompiledTimingGraph(graph)
        graph._compiled = compiled
    return compiled


# ----------------------------------------------------------------------
# per-module compiled-graph cache
# ----------------------------------------------------------------------

class _CacheEntry:
    __slots__ = ("graph", "library", "fingerprint")

    def __init__(self, graph: CompiledTimingGraph, library: Library,
                 fingerprint: Tuple):
        self.graph = graph
        self.library = library
        self.fingerprint = fingerprint


_MODULE_CACHE: "weakref.WeakKeyDictionary[Module, Dict]" = (
    weakref.WeakKeyDictionary()
)


def _module_fingerprint(module: Module) -> Tuple:
    return (
        module.mutation_count,
        wire_attr_fingerprint(module, "net_wire_cap"),
        wire_attr_fingerprint(module, "net_wire_delay"),
    )


def _variant_key(
    library: Library,
    disables: Optional[Iterable[Disable]],
    instance_filter,
    through_sequential: bool,
) -> Tuple:
    return (
        id(library),
        frozenset(disables or ()),
        frozenset(instance_filter) if instance_filter is not None else None,
        bool(through_sequential),
    )


def compiled_graph(
    module: Module,
    library: Library,
    disables: Optional[Iterable[Disable]] = None,
    instance_filter=None,
    through_sequential: bool = False,
) -> CompiledTimingGraph:
    """The cached compiled graph of a module view (built at derate 1.0).

    Rebuilt only when the module's mutation stamp or wire-annotation
    fingerprint moves; every corner of every analysis shares the one
    build.  Distinct disables/filter/view combinations cache as
    separate variants (bounded per module).
    """
    variants = _MODULE_CACHE.get(module)
    if variants is None:
        variants = {}
        _MODULE_CACHE[module] = variants
    key = _variant_key(library, disables, instance_filter, through_sequential)
    fingerprint = _module_fingerprint(module)
    entry = variants.get(key)
    if (
        entry is not None
        and entry.library is library
        and entry.fingerprint == fingerprint
    ):
        metrics.counter("sta.compiled.cache_hits").inc()
        return entry.graph
    graph = build_timing_graph(
        module,
        library,
        disables=disables,
        instance_filter=(
            set(instance_filter) if instance_filter is not None else None
        ),
        through_sequential=through_sequential,
        derate=1.0,
    )
    compiled = CompiledTimingGraph(graph, module=module, library=library)
    if entry is None and len(variants) >= _MAX_VARIANTS:
        variants.pop(next(iter(variants)))
    variants[key] = _CacheEntry(compiled, library, fingerprint)
    return compiled


def invalidate_module(module: Module) -> None:
    """Drop every cached compiled graph of ``module``."""
    _MODULE_CACHE.pop(module, None)


def annotate_wires(
    module: Module,
    wire_caps: Optional[Dict[str, float]] = None,
    wire_delays: Optional[Dict[str, float]] = None,
    replace: bool = False,
) -> None:
    """Annotate wire parasitics and re-time cached graphs incrementally.

    The supported way to change ``net_wire_cap`` / ``net_wire_delay``:
    merges (or, with ``replace``, substitutes) the annotation dicts and
    walks every live compiled graph of the module, re-propagating only
    the fanout cones of the touched nets.  Writing the attributes
    directly stays correct -- the fingerprint check forces a rebuild --
    but forfeits the incremental path.
    """
    for attr, annotation in (
        ("net_wire_cap", wire_caps),
        ("net_wire_delay", wire_delays),
    ):
        if annotation is None:
            continue
        if replace or attr not in module.attributes:
            module.attributes[attr] = dict(annotation)
        else:
            module.attributes[attr].update(annotation)

    variants = _MODULE_CACHE.get(module)
    if not variants:
        return
    fingerprint = _module_fingerprint(module)
    stamp = module.mutation_count
    for entry in variants.values():
        if entry.fingerprint[0] == stamp and entry.graph.library is not None:
            entry.graph.refresh_wires()
            entry.fingerprint = fingerprint
        # stale-stamp entries rebuild on next access via the fingerprint
