"""Static timing analysis: timing graph, propagation, SDC constraints."""

from .graph import (
    Disable,
    Node,
    TimingEdge,
    TimingGraph,
    build_timing_graph,
    compute_net_loads,
)
from .analysis import (
    PathPoint,
    StaReport,
    TimingLoopError,
    analyze,
    min_clock_period,
    path_to_text,
    propagate,
    region_critical_path,
)
from .ssta import (
    MatchingRow,
    SstaReport,
    StatArrival,
    delay_element_matching,
    ssta_analyze,
    ssta_propagate,
    statistical_max,
)
from .sdc import (
    CreateClock,
    PathDelay,
    SdcFile,
    SetDisableTiming,
    SetDontTouch,
    SetSizeOnly,
)

__all__ = [
    "CreateClock",
    "MatchingRow",
    "SstaReport",
    "StatArrival",
    "delay_element_matching",
    "ssta_analyze",
    "ssta_propagate",
    "statistical_max",
    "Disable",
    "Node",
    "PathDelay",
    "PathPoint",
    "SdcFile",
    "SetDisableTiming",
    "SetDontTouch",
    "SetSizeOnly",
    "StaReport",
    "TimingEdge",
    "TimingGraph",
    "TimingLoopError",
    "analyze",
    "build_timing_graph",
    "compute_net_loads",
    "min_clock_period",
    "path_to_text",
    "propagate",
    "region_critical_path",
]
