"""Static timing analysis: timing graph, propagation, SDC constraints.

Propagation runs on one of two backends: ``"compiled"`` (default) flat
integer-id arrays with corner rescaling, incremental ECO re-timing and
per-module caching (:mod:`repro.sta.compiled`), or ``"reference"``, the
original dict-based walk kept as a bit-identical parity oracle.
"""

from .graph import (
    Disable,
    Node,
    TimingEdge,
    TimingGraph,
    build_timing_graph,
    compute_net_loads,
    node_sort_key,
)
from .analysis import (
    BACKENDS,
    PathPoint,
    StaReport,
    TimingLoopError,
    analyze,
    analyze_corners,
    min_clock_period,
    path_to_text,
    propagate,
    region_critical_path,
)
from .compiled import (
    CompiledTimingGraph,
    annotate_wires,
    compiled_graph,
    compiled_of,
    invalidate_module,
)
from .ssta import (
    MatchingRow,
    SstaReport,
    StatArrival,
    delay_element_matching,
    ssta_analyze,
    ssta_corners,
    ssta_propagate,
    statistical_max,
)
from .sdc import (
    CreateClock,
    PathDelay,
    SdcFile,
    SetDisableTiming,
    SetDontTouch,
    SetSizeOnly,
)

__all__ = [
    "BACKENDS",
    "CompiledTimingGraph",
    "CreateClock",
    "MatchingRow",
    "SstaReport",
    "StatArrival",
    "annotate_wires",
    "compiled_graph",
    "compiled_of",
    "delay_element_matching",
    "invalidate_module",
    "node_sort_key",
    "ssta_analyze",
    "ssta_corners",
    "ssta_propagate",
    "statistical_max",
    "Disable",
    "Node",
    "PathDelay",
    "PathPoint",
    "SdcFile",
    "SetDisableTiming",
    "SetDontTouch",
    "SetSizeOnly",
    "StaReport",
    "TimingEdge",
    "TimingGraph",
    "TimingLoopError",
    "analyze",
    "analyze_corners",
    "build_timing_graph",
    "compute_net_loads",
    "min_clock_period",
    "path_to_text",
    "propagate",
    "region_critical_path",
]
