"""Statistical static timing analysis (the paper's future work, ch. 6).

"SSTA can be used to verify how well the delay elements match the logic
delay across the whole spectrum of operation conditions."  This module
implements a first-order canonical SSTA and exactly that verification.

Delay model per timing arc::

    D = mean * (1 + s_g * Xg  +  s_l * Xl)

where ``Xg ~ N(0,1)`` is the *global* (inter-die) variable shared by
every gate on the die and ``Xl ~ N(0,1)`` is an independent *local*
(intra-die) variable per arc.  Arrivals propagate in canonical form
``(mean, a_g, var_l)``:

- addition along a path: means add, global sensitivities add, local
  variances add;
- max of two arrivals: Clark's moment matching, with the correlation
  induced by the shared global term.

:func:`delay_element_matching` answers the paper's question: because a
delay element is built from the same gates on the same die, its global
sensitivity largely cancels against the logic's, and the probability
that the element still covers the cloud ("timing yield") stays high
across the whole spectrum -- unlike an uncorrelated margin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..liberty.model import Library
from ..netlist.core import Module
from .analysis import _check_backend, _topological_order
from .graph import Node, TimingGraph, build_timing_graph, node_sort_key

_SQRT2PI = math.sqrt(2.0 * math.pi)


def _phi(x: float) -> float:
    return math.exp(-0.5 * x * x) / _SQRT2PI


def _cdf(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


@dataclass
class StatArrival:
    """Canonical first-order arrival: mean + global + local parts."""

    mean: float = 0.0
    global_sens: float = 0.0  # coefficient of the shared Xg
    local_var: float = 0.0  # variance of the independent part

    @property
    def variance(self) -> float:
        return self.global_sens * self.global_sens + self.local_var

    @property
    def sigma(self) -> float:
        return math.sqrt(max(self.variance, 0.0))

    def plus(self, mean: float, s_global: float, s_local: float
             ) -> "StatArrival":
        return StatArrival(
            self.mean + mean,
            self.global_sens + mean * s_global,
            self.local_var + (mean * s_local) ** 2,
        )

    def quantile(self, p: float) -> float:
        """Approximate p-quantile assuming normality."""
        # Acklam-lite: use erfinv via bisection-free approximation
        return self.mean + self.sigma * _normal_quantile(p)


def _normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Beasley-Springer-Moro)."""
    if not 0.0 < p < 1.0:
        raise ValueError("quantile needs 0 < p < 1")
    a = [-3.969683028665376e01, 2.209460984245205e02,
         -2.759285104469687e02, 1.383577518672690e02,
         -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02,
         -1.556989798598866e02, 6.680131188771972e01,
         -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e00, -2.549732539343734e00,
         4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e00, 3.754408661907416e00]
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p > 1 - p_low:
        q = math.sqrt(-2.0 * math.log(1 - p))
        return -((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                  + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1))
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
            + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                            + b[4]) * r + 1)


def statistical_max(a: StatArrival, b: StatArrival) -> StatArrival:
    """Clark's approximation of max(a, b) in canonical form."""
    var_a, var_b = a.variance, b.variance
    covariance = a.global_sens * b.global_sens
    theta_sq = var_a + var_b - 2.0 * covariance
    if theta_sq <= 1e-18:
        return a if a.mean >= b.mean else b
    theta = math.sqrt(theta_sq)
    alpha = (a.mean - b.mean) / theta
    t = _cdf(alpha)
    mean = a.mean * t + b.mean * (1 - t) + theta * _phi(alpha)
    second = (
        (var_a + a.mean * a.mean) * t
        + (var_b + b.mean * b.mean) * (1 - t)
        + (a.mean + b.mean) * theta * _phi(alpha)
    )
    variance = max(second - mean * mean, 0.0)
    global_sens = a.global_sens * t + b.global_sens * (1 - t)
    local_var = max(variance - global_sens * global_sens, 0.0)
    return StatArrival(mean, global_sens, local_var)


@dataclass
class SstaReport:
    arrivals: Dict[Node, StatArrival] = field(default_factory=dict)
    worst_endpoint: Optional[Node] = None
    worst: StatArrival = field(default_factory=StatArrival)


def ssta_propagate(
    graph: TimingGraph,
    sigma_global: float = 0.08,
    sigma_local: float = 0.04,
    backend: str = "compiled",
) -> SstaReport:
    """Statistical max-delay propagation over a timing graph.

    Backends are bit-identical: the compiled engine replays the same
    ``plus``/Clark-max call sequence over flat arrays.
    """
    _check_backend(backend)
    if backend == "compiled":
        from .compiled import compiled_of

        return compiled_of(graph).ssta(1.0, sigma_global, sigma_local)
    arrivals: Dict[Node, StatArrival] = {}
    for node, clk_to_q in graph.launch_nodes.items():
        arrivals[node] = StatArrival(clk_to_q, clk_to_q * sigma_global,
                                     (clk_to_q * sigma_local) ** 2)
    for node in graph.input_nodes:
        arrivals.setdefault(node, StatArrival())

    report = SstaReport()
    for node in _topological_order(graph):
        arrival = arrivals.get(node)
        if arrival is None:
            continue
        for edge in graph.adjacency.get(node, ()):
            candidate = arrival.plus(edge.delay, sigma_global, sigma_local)
            existing = arrivals.get(edge.dst)
            arrivals[edge.dst] = (
                candidate
                if existing is None
                else statistical_max(existing, candidate)
            )

    endpoints = set(graph.capture_nodes) | graph.output_nodes
    # deterministic order, matching the compiled backend's tie-breaking
    for node in sorted(endpoints, key=node_sort_key):
        arrival = arrivals.get(node)
        if arrival is None:
            continue
        setup = graph.capture_nodes.get(node, 0.0)
        total = StatArrival(
            arrival.mean + setup, arrival.global_sens, arrival.local_var
        )
        if total.mean > report.worst.mean:
            report.worst = total
            report.worst_endpoint = node
    report.arrivals = arrivals
    return report


def ssta_analyze(
    module: Module,
    library: Library,
    corner: str = "worst",
    sigma_global: float = 0.08,
    sigma_local: float = 0.04,
    backend: str = "compiled",
) -> SstaReport:
    """SSTA at one corner; the compiled backend shares one base graph
    across corners via derate rescaling."""
    _check_backend(backend)
    if backend == "compiled":
        from .compiled import compiled_graph

        return compiled_graph(module, library).ssta(
            library.corner(corner).derate, sigma_global, sigma_local
        )
    graph = build_timing_graph(module, library, corner)
    return ssta_propagate(graph, sigma_global, sigma_local, backend=backend)


def _ssta_corner_task(args) -> Tuple[str, SstaReport]:
    module, library, corner, sigma_global, sigma_local, backend = args
    return corner, ssta_analyze(
        module, library, corner, sigma_global, sigma_local, backend=backend
    )


def ssta_corners(
    module: Module,
    library: Library,
    corners: Optional[List[str]] = None,
    sigma_global: float = 0.08,
    sigma_local: float = 0.04,
    backend: str = "compiled",
    jobs: Optional[int] = None,
) -> Dict[str, SstaReport]:
    """SSTA at every corner (default: all of the library's).

    ``jobs`` > 1 fans corners out over
    :func:`repro.engine.pool.parallel_map`; the serial fallback is
    bit-identical regardless of worker count.
    """
    _check_backend(backend)
    names = list(corners) if corners is not None else sorted(library.corners)
    if jobs is not None and jobs > 1 and len(names) > 1:
        from ..engine.pool import parallel_map

        pairs = parallel_map(
            _ssta_corner_task,
            [
                (module, library, name, sigma_global, sigma_local, backend)
                for name in names
            ],
            jobs=jobs,
        )
        return dict(pairs)
    return {
        name: ssta_analyze(
            module, library, name, sigma_global, sigma_local, backend=backend
        )
        for name in names
    }


# ----------------------------------------------------------------------
# the future-work verification: delay-element vs logic matching
# ----------------------------------------------------------------------

@dataclass
class MatchingRow:
    region: str
    cloud: StatArrival
    element: StatArrival
    #: P(element delay >= cloud delay) with the shared-die correlation
    yield_correlated: float
    #: the same probability if the element did NOT share the die
    yield_uncorrelated: float


def _difference_stats(element: StatArrival, cloud: StatArrival,
                      correlated: bool) -> Tuple[float, float]:
    mean = element.mean - cloud.mean
    if correlated:
        global_part = (element.global_sens - cloud.global_sens) ** 2
    else:
        global_part = element.global_sens ** 2 + cloud.global_sens ** 2
    variance = global_part + element.local_var + cloud.local_var
    return mean, math.sqrt(max(variance, 1e-18))


def delay_element_matching(
    desync_result,
    library: Library,
    corner: str = "worst",
    sigma_global: float = 0.08,
    sigma_local: float = 0.04,
) -> List[MatchingRow]:
    """Per region: does the delay element still cover the cloud, in
    distribution?  (Chapter 6: "verify how well the delay elements
    match the logic delay across the whole spectrum".)"""
    derate = library.corner(corner).derate
    ladder = desync_result.ladder
    ladder_derate = library.corner(ladder.corner).derate
    rows: List[MatchingRow] = []
    for region, element in sorted(desync_result.network.delay_elements.items()):
        cloud_mean = desync_result.network.region_delays.get(region, 0.0)
        if cloud_mean <= 0:
            continue
        element_mean = ladder.delay_of(element.length) / ladder_derate * derate
        # local sigma shrinks with chain length (averaging of independent
        # per-stage variations); the cloud's local part likewise reflects
        # its logic depth -- approximate depth from delay over an FO4
        fo4 = library.cell("INVX1").delay_arcs()[0].worst_delay(0.01) * derate
        cloud_depth = max(cloud_mean / max(fo4, 1e-9), 1.0)
        cloud = StatArrival(
            cloud_mean,
            cloud_mean * sigma_global,
            (cloud_mean * sigma_local) ** 2 / cloud_depth,
        )
        stat_element = StatArrival(
            element_mean,
            element_mean * sigma_global,
            (element_mean * sigma_local) ** 2 / max(element.length, 1),
        )
        mean_c, sigma_c = _difference_stats(stat_element, cloud, True)
        mean_u, sigma_u = _difference_stats(stat_element, cloud, False)
        rows.append(
            MatchingRow(
                region=region,
                cloud=cloud,
                element=stat_element,
                yield_correlated=_cdf(mean_c / sigma_c),
                yield_uncorrelated=_cdf(mean_u / sigma_u),
            )
        )
    return rows
