"""repro -- a fully-automated desynchronization flow for synchronous circuits.

A from-scratch Python reproduction of the DAC 2007 desynchronization
flow: gate-level netlist handling, technology library support, the
``drdesync`` conversion tool (regions, flip-flop substitution, latch
controllers, C-Muller elements, delay elements, constraint generation),
plus the substrates needed to evaluate it end to end (STA, event-driven
simulation, placement & routing model, power and variability analysis,
DLX / ARM-class design generators).

Quick start::

    from repro.liberty import core9_hs
    from repro.designs import pipeline3
    from repro.desync import Drdesync

    library = core9_hs()
    design = pipeline3(library)
    result = Drdesync(library).run(design)
    print(result.summary())
    print(result.export_sdc())
"""

__version__ = "1.9.0"

from . import obs  # noqa: F401
from . import netlist  # noqa: F401
from . import liberty  # noqa: F401
from . import sta  # noqa: F401
from . import stg  # noqa: F401
from . import desync  # noqa: F401
from . import engine  # noqa: F401
from . import dft  # noqa: F401
from . import sim  # noqa: F401
from . import physical  # noqa: F401
from . import power  # noqa: F401
from . import variability  # noqa: F401
from . import perf  # noqa: F401
from . import designs  # noqa: F401
from . import flow  # noqa: F401
from . import service  # noqa: F401
