"""Standard-cell placement model.

Stands in for the Astro P&R step of the paper: row-based placement of
the flat netlist into a core whose size is set by a target utilization
(the floorplan decision).  Cells are ordered by a connectivity-driven
BFS so connected logic lands close together, then packed into rows;
an optional greedy swap pass reduces half-perimeter wirelength.

The placement feeds the routing estimator (wire caps and delays) and
the layout report (core size / utilization, Table 5.1 and 5.2 rows).
"""

from __future__ import annotations

import math
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..liberty.model import Library
from ..netlist.core import Module

#: standard-cell row height in um (90nm-class: ~8 tracks x 0.28 um)
ROW_HEIGHT = 2.8


@dataclass
class Placement:
    """Cell locations plus the core geometry."""

    locations: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    core_width: float = 0.0
    core_height: float = 0.0
    cell_area: float = 0.0

    @property
    def core_area(self) -> float:
        return self.core_width * self.core_height

    @property
    def utilization(self) -> float:
        if self.core_area == 0:
            return 0.0
        return self.cell_area / self.core_area


def _cell_width(library: Library, cell_name: str) -> float:
    cell = library.cells.get(cell_name)
    if cell is None:
        return ROW_HEIGHT  # unknown cell: assume one square site
    return max(cell.area / ROW_HEIGHT, 0.4)


def _connectivity_order(module: Module) -> List[str]:
    """BFS over the instance-connection graph, region-aware seeds."""
    neighbours: Dict[str, List[str]] = defaultdict(list)
    for net in module.nets.values():
        pins = [ref.instance for ref in net.connections if ref.instance]
        if len(pins) > 20:
            continue  # skip high-fanout nets (clock/reset/enable)
        for a in pins:
            for b in pins:
                if a != b:
                    neighbours[a].append(b)

    order: List[str] = []
    visited = set()
    # deterministic seed order: by region attribute then name
    def seed_key(name: str):
        inst = module.instances[name]
        return (str(inst.attributes.get("region", "")), name)

    for seed in sorted(module.instances, key=seed_key):
        if seed in visited:
            continue
        queue = deque([seed])
        visited.add(seed)
        while queue:
            node = queue.popleft()
            order.append(node)
            for neighbour in neighbours.get(node, ()):
                if neighbour not in visited:
                    visited.add(neighbour)
                    queue.append(neighbour)
    return order


def place(
    module: Module,
    library: Library,
    target_utilization: float = 0.90,
    aspect_ratio: float = 1.0,
) -> Placement:
    """Place every instance; returns locations and core geometry."""
    placement = Placement()
    cell_area = sum(
        library.cells[inst.cell].area
        for inst in module.instances.values()
        if inst.cell in library.cells
    )
    placement.cell_area = cell_area
    if cell_area == 0:
        return placement

    core_area = cell_area / max(min(target_utilization, 0.99), 0.05)
    core_width = math.sqrt(core_area * aspect_ratio)
    n_rows = max(1, round(math.sqrt(core_area / aspect_ratio) / ROW_HEIGHT))
    core_height = n_rows * ROW_HEIGHT
    core_width = core_area / core_height
    placement.core_width = core_width
    placement.core_height = core_height

    order = _connectivity_order(module)
    x, row = 0.0, 0
    for name in order:
        width = _cell_width(library, module.instances[name].cell)
        if x + width > core_width and row < n_rows - 1:
            x = 0.0
            row += 1
        placement.locations[name] = (
            min(x + width / 2.0, core_width),
            (row + 0.5) * ROW_HEIGHT,
        )
        x += width / max(target_utilization, 0.05)
    return placement


def net_hpwl(module: Module, placement: Placement, net_name: str) -> float:
    """Half-perimeter wirelength of one net (um)."""
    net = module.nets.get(net_name)
    if net is None:
        return 0.0
    xs: List[float] = []
    ys: List[float] = []
    for ref in net.connections:
        if ref.instance is None:
            continue
        location = placement.locations.get(ref.instance)
        if location is not None:
            xs.append(location[0])
            ys.append(location[1])
    if len(xs) < 2:
        return 0.0
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def total_wirelength(module: Module, placement: Placement) -> float:
    return sum(net_hpwl(module, placement, net) for net in module.nets)


def improve_placement(
    module: Module,
    placement: Placement,
    passes: int = 1,
    window: int = 24,
) -> float:
    """Greedy local improvement: swap nearby cells when HPWL drops.

    Returns the total wirelength after improvement.  Cheap and bounded:
    only adjacent-in-order pairs within ``window`` positions are tried.
    """
    names = list(placement.locations)
    inst_nets: Dict[str, List[str]] = {
        name: [] for name in names
    }
    for net_name, net in module.nets.items():
        for ref in net.connections:
            if ref.instance in inst_nets and len(net.connections) <= 16:
                inst_nets[ref.instance].append(net_name)

    def cost_of(instance: str) -> float:
        return sum(
            net_hpwl(module, placement, n) for n in inst_nets[instance]
        )

    for _ in range(passes):
        for index in range(0, len(names) - window, window):
            a, b = names[index], names[index + window // 2]
            before = cost_of(a) + cost_of(b)
            placement.locations[a], placement.locations[b] = (
                placement.locations[b],
                placement.locations[a],
            )
            after = cost_of(a) + cost_of(b)
            if after >= before:
                placement.locations[a], placement.locations[b] = (
                    placement.locations[b],
                    placement.locations[a],
                )
    return total_wirelength(module, placement)
