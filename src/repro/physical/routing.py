"""Routing estimation and parasitic annotation.

From a placement, each net gets a routed-length estimate (HPWL times a
Steiner detour factor growing with pin count), from which wire
capacitance and Elmore-style wire delay are derived.  The results are
annotated onto the module (``net_wire_cap`` / ``net_wire_delay``
attributes) so STA and simulation naturally become layout-aware --
the "full parasitic extraction" of section 4.8, at model fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..netlist.core import Module
from .placement import Placement, net_hpwl

#: 90nm-class unit parasitics
WIRE_CAP_PER_UM = 0.00020  # pF/um
WIRE_RES_PER_UM = 0.40  # ohm/um  (kohm*pF -> ns works out with /1000)


@dataclass
class RoutingResult:
    net_lengths: Dict[str, float] = field(default_factory=dict)
    net_caps: Dict[str, float] = field(default_factory=dict)
    net_delays: Dict[str, float] = field(default_factory=dict)

    @property
    def total_wirelength(self) -> float:
        return sum(self.net_lengths.values())


def _detour_factor(pin_count: int) -> float:
    """Steiner-tree detour over HPWL, growing gently with pins."""
    if pin_count <= 3:
        return 1.0
    return 1.0 + 0.15 * (pin_count - 3) ** 0.5


def route(module: Module, placement: Placement) -> RoutingResult:
    """Estimate lengths/parasitics for every net and annotate the module."""
    result = RoutingResult()
    for net_name, net in module.nets.items():
        pins = sum(1 for ref in net.connections if ref.instance is not None)
        length = net_hpwl(module, placement, net_name) * _detour_factor(pins)
        cap = length * WIRE_CAP_PER_UM
        # Elmore: half of distributed R times distributed C, in ns
        delay = 0.5 * (length * WIRE_RES_PER_UM) * cap / 1000.0
        result.net_lengths[net_name] = length
        result.net_caps[net_name] = cap
        result.net_delays[net_name] = delay
    from ..sta.compiled import annotate_wires

    # annotate through the STA entry point: cached compiled timing
    # graphs of the module re-time only the touched fanout cones
    annotate_wires(
        module, result.net_caps, result.net_delays, replace=True
    )
    return result


def congestion_estimate(
    module: Module, placement: Placement, routing: RoutingResult
) -> float:
    """Routing demand per core area; >1.0 suggests utilization must drop."""
    if placement.core_area == 0:
        return 0.0
    # ~8 routing tracks per um of core in each direction at 90nm
    capacity = placement.core_area * 8.0
    return routing.total_wirelength / max(capacity, 1e-9)
