"""Floorplanning support for delay-element placement (future work, ch. 6).

"Floorplanning constraints can be given to the backend tools to control
the placement of the delay elements.  Making the tools place them close
to the logic they match, more variability correlation is achieved."

The placer already clusters cells by their ``region`` attribute; this
module adds the measurement and the constraint:

- :func:`delay_element_proximity` reports, per region, the mean distance
  between the delay-element cells and the centroid of the logic they
  model -- the proxy for intra-die tracking correlation;
- :func:`apply_floorplan_constraints` pins each element's cells onto its
  region's centroid band before a placement refinement pass.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..netlist.core import Module
from .placement import Placement


@dataclass
class ProximityReport:
    #: region -> (mean delay-cell distance to region centroid, spread)
    per_region: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_distance(self) -> float:
        if not self.per_region:
            return 0.0
        return sum(self.per_region.values()) / len(self.per_region)


def _region_centroids(
    module: Module, placement: Placement
) -> Dict[str, Tuple[float, float, int]]:
    sums: Dict[str, Tuple[float, float, int]] = {}
    for name, inst in module.instances.items():
        region = inst.attributes.get("region")
        if region is None or inst.attributes.get("role") in (
            "delay_element",
            "cmuller",
        ):
            continue
        location = placement.locations.get(name)
        if location is None:
            continue
        x, y, count = sums.get(region, (0.0, 0.0, 0))
        sums[region] = (x + location[0], y + location[1], count + 1)
    return sums


def delay_element_proximity(
    module: Module, placement: Placement, network
) -> ProximityReport:
    """Mean distance of each region's delay-element cells to its logic."""
    centroids = _region_centroids(module, placement)
    report = ProximityReport()
    for region, element in network.delay_elements.items():
        sums = centroids.get(region)
        if sums is None or sums[2] == 0:
            continue
        cx, cy = sums[0] / sums[2], sums[1] / sums[2]
        distances = []
        for name in element.instances:
            location = placement.locations.get(name)
            if location is None:
                continue
            distances.append(math.hypot(location[0] - cx, location[1] - cy))
        if distances:
            report.per_region[region] = sum(distances) / len(distances)
    return report


def apply_floorplan_constraints(
    module: Module, placement: Placement, network
) -> int:
    """Snap delay-element cells next to their region's centroid.

    A lightweight legalisation stands in for real region constraints:
    element cells are re-placed on a compact strip centred on the
    region centroid (clamped to the core).  Returns cells moved.
    """
    centroids = _region_centroids(module, placement)
    moved = 0
    for region, element in network.delay_elements.items():
        sums = centroids.get(region)
        if sums is None or sums[2] == 0:
            continue
        cx, cy = sums[0] / sums[2], sums[1] / sums[2]
        for index, name in enumerate(element.instances):
            if name not in placement.locations:
                continue
            offset = (index - len(element.instances) / 2.0) * 1.2
            x = min(max(cx + offset, 0.0), placement.core_width)
            y = min(max(cy, 0.0), placement.core_height)
            placement.locations[name] = (x, y)
            moved += 1
    return moved
