"""The backend stage: place, CTS, route, in-place optimize, report.

Mirrors the paper's P&R step (section 4.7): gates are placed, low-skew
buffer trees inserted, nets routed, and the timing/DRC-driven in-place
optimization resizes drivers and buffers heavy nets -- honouring the
desynchronization constraints (``size_only`` gates may be resized but
never restructured; ``dont_touch`` cells are left alone entirely).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..liberty.model import CellKind, Library
from ..netlist.core import Module, PortDirection
from ..sta.sdc import SdcFile
from .cts import CtsResult, run_cts
from .placement import Placement, improve_placement, place, total_wirelength
from .routing import RoutingResult, congestion_estimate, route

_DRIVE_RE = re.compile(r"^(?P<base>.+?)X(?P<drive>\d+)$")
_DRIVE_LADDER = [1, 2, 4]


@dataclass
class LayoutReport:
    """Post-layout numbers in the shape of Tables 5.1 / 5.2."""

    nets: int = 0
    cells: int = 0
    standard_cell_area: float = 0.0
    core_size: float = 0.0
    utilization: float = 0.0
    wirelength: float = 0.0
    congestion: float = 0.0
    cts_buffers: int = 0
    ipo_changes: int = 0


@dataclass
class BackendResult:
    placement: Placement
    routing: RoutingResult
    cts: CtsResult
    report: LayoutReport


def _upsize(cell_name: str, library: Library) -> Optional[str]:
    match = _DRIVE_RE.match(cell_name)
    if match is None:
        return None
    drive = int(match.group("drive"))
    try:
        next_drive = _DRIVE_LADDER[_DRIVE_LADDER.index(drive) + 1]
    except (ValueError, IndexError):
        return None
    candidate = f"{match.group('base')}X{next_drive}"
    if candidate not in library:
        return None
    return candidate


def in_place_optimize(
    module: Module,
    library: Library,
    routing: RoutingResult,
    dont_touch: Optional[Set[str]] = None,
    max_passes: int = 3,
) -> int:
    """Fix max-capacitance violations by resizing or buffering drivers.

    Cells marked ``dont_touch`` (delay elements) are skipped; cells with
    only ``size_only`` (controllers) may be resized, matching section
    4.6.2.  Returns the number of netlist changes.
    """
    from ..sta.graph import compute_net_loads

    dont_touch = dont_touch or set()
    changes = 0
    for _ in range(max_passes):
        loads = compute_net_loads(module, library)
        fixed_this_pass = 0
        for inst in list(module.instances.values()):
            if inst.name in dont_touch or inst.attributes.get("dont_touch"):
                continue
            cell = library.cells.get(inst.cell)
            if cell is None:
                continue
            for pin_name in cell.output_pins():
                net = inst.pins.get(pin_name)
                if net is None:
                    continue
                max_cap = cell.pins[pin_name].max_capacitance
                if max_cap is None or loads.get(net, 0.0) <= max_cap:
                    continue
                bigger = _upsize(inst.cell, library)
                if bigger is not None:
                    inst.cell = bigger
                    fixed_this_pass += 1
                    break
                if inst.attributes.get("size_only"):
                    continue  # cannot restructure controller fanout
                # split the net with a buffer taking half the sinks
                fixed_this_pass += _insert_split_buffer(
                    module, library, net
                )
                break
        changes += fixed_this_pass
        if fixed_this_pass == 0:
            break
    return changes


def _insert_split_buffer(module: Module, library: Library, net: str) -> int:
    from ..netlist.core import PinRef

    if "BUFX4" not in library:
        return 0
    sinks = [
        ref
        for ref in module.nets[net].connections
        if ref.instance is not None
        and _is_input_pin(module, library, ref)
    ]
    if len(sinks) < 4:
        return 0
    moved = sinks[: len(sinks) // 2]
    buf_name = module.new_name("ipo_buf")
    buf_net = module.new_name("ipo_net")
    module.ensure_net(buf_net)
    inst = module.add_instance(buf_name, "BUFX4", {"A": net, "Z": buf_net})
    inst.attributes["role"] = "ipo_buffer"
    for ref in moved:
        module.connect(ref.instance, ref.pin, buf_net)
    return 1


def _is_input_pin(module, library, ref) -> bool:
    cell = library.cells.get(module.instances[ref.instance].cell)
    if cell is None:
        return False
    pin = cell.pins.get(ref.pin)
    return pin is not None and pin.direction == PortDirection.INPUT


def run_backend(
    module: Module,
    library: Library,
    sdc: Optional[SdcFile] = None,
    target_utilization: float = 0.90,
    improve: bool = False,
) -> BackendResult:
    """Full backend: CTS -> placement -> routing -> IPO -> report."""
    dont_touch: Set[str] = set()
    if sdc is not None:
        for constraint in sdc.constraints:
            kind = type(constraint).__name__
            if kind == "SetDontTouch":
                dont_touch.update(constraint.instances)

    placement = place(module, library, target_utilization)
    cts = run_cts(module, library, placement)
    # CTS added cells: re-place to account for them
    placement = place(module, library, target_utilization)
    if improve:
        improve_placement(module, placement)
    routing = route(module, placement)
    ipo_changes = in_place_optimize(module, library, routing, dont_touch)
    if ipo_changes:
        placement = place(module, library, target_utilization)
        routing = route(module, placement)

    report = LayoutReport(
        nets=len(module.nets),
        cells=len(module.instances),
        standard_cell_area=placement.cell_area,
        core_size=placement.core_area,
        utilization=placement.utilization,
        wirelength=routing.total_wirelength,
        congestion=congestion_estimate(module, placement, routing),
        cts_buffers=cts.total_buffers,
        ipo_changes=ipo_changes,
    )
    return BackendResult(placement, routing, cts, report)
