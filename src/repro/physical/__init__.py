"""Physical design model: placement, routing, CTS, backend flow."""

from .placement import (
    Placement,
    ROW_HEIGHT,
    improve_placement,
    net_hpwl,
    place,
    total_wirelength,
)
from .routing import RoutingResult, congestion_estimate, route
from .cts import ClockTree, CtsResult, enable_nets_of, run_cts, synthesize_tree
from .floorplan import (
    ProximityReport,
    apply_floorplan_constraints,
    delay_element_proximity,
)
from .backend import (
    BackendResult,
    LayoutReport,
    in_place_optimize,
    run_backend,
)

__all__ = [
    "BackendResult",
    "ProximityReport",
    "apply_floorplan_constraints",
    "delay_element_proximity",
    "ClockTree",
    "CtsResult",
    "LayoutReport",
    "Placement",
    "ROW_HEIGHT",
    "RoutingResult",
    "congestion_estimate",
    "enable_nets_of",
    "improve_placement",
    "in_place_optimize",
    "net_hpwl",
    "place",
    "route",
    "run_backend",
    "run_cts",
    "synthesize_tree",
    "total_wirelength",
]
