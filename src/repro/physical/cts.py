"""Clock / latch-enable tree synthesis.

The backend inserts low-skew buffer trees on the clock net of the
synchronous design and on every master/slave enable net of the
desynchronized one (section 4.5.1: the CTS algorithm matches the buffer
tree depths of the enable signals).  The model clusters sinks by
placement proximity, inserts CKBUF levels bounded by a maximum fanout,
and reports insertion delay and skew per tree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..liberty.model import Library
from ..netlist.core import Module, PinRef, PortDirection
from .placement import Placement


@dataclass
class ClockTree:
    root_net: str
    buffers: List[str] = field(default_factory=list)
    levels: int = 0
    sink_count: int = 0

    @property
    def insertion_delay_levels(self) -> int:
        return self.levels


@dataclass
class CtsResult:
    trees: Dict[str, ClockTree] = field(default_factory=dict)

    @property
    def total_buffers(self) -> int:
        return sum(len(t.buffers) for t in self.trees.values())


def _clock_sink_pins(
    module: Module, library: Library, net_name: str
) -> List[PinRef]:
    net = module.nets.get(net_name)
    if net is None:
        return []
    sinks = []
    for ref in net.connections:
        if ref.instance is None:
            continue
        cell = library.cells.get(module.instances[ref.instance].cell)
        if cell is None:
            continue
        pin = cell.pins.get(ref.pin)
        if pin is not None and pin.direction == PortDirection.INPUT:
            sinks.append(ref)
    return sinks


def synthesize_tree(
    module: Module,
    library: Library,
    net_name: str,
    placement: Optional[Placement] = None,
    max_fanout: int = 12,
    buffer_cell: str = "CKBUFX4",
) -> ClockTree:
    """Insert a buffer tree on ``net_name``; rewires sink pins in place."""
    tree = ClockTree(net_name)
    sinks = _clock_sink_pins(module, library, net_name)
    tree.sink_count = len(sinks)
    if len(sinks) <= max_fanout:
        return tree

    def position(ref: PinRef) -> Tuple[float, float]:
        if placement is None or ref.instance not in placement.locations:
            return (0.0, 0.0)
        return placement.locations[ref.instance]

    current: List[Tuple[PinRef, Tuple[float, float]]] = [
        (ref, position(ref)) for ref in sinks
    ]
    # each pass: sort by position, chop into clusters, buffer each cluster
    level = 0
    while len(current) > max_fanout:
        level += 1
        current.sort(key=lambda item: (item[1][1], item[1][0]))
        next_level: List[Tuple[PinRef, Tuple[float, float]]] = []
        for start in range(0, len(current), max_fanout):
            cluster = current[start : start + max_fanout]
            buf_name = module.new_name(f"ctsbuf_{net_name}")
            buf_out = module.new_name(f"ctsnet_{net_name}")
            module.ensure_net(buf_out)
            inst = module.add_instance(
                buf_name, buffer_cell, {"A": net_name, "Z": buf_out}
            )
            inst.attributes["role"] = "cts_buffer"
            tree.buffers.append(buf_name)
            xs = [p[0] for _, p in cluster]
            ys = [p[1] for _, p in cluster]
            centre = (sum(xs) / len(xs), sum(ys) / len(ys))
            for ref, _pos in cluster:
                module.connect(ref.instance, ref.pin, buf_out)
            next_level.append((PinRef(buf_name, "A"), centre))
        current = next_level
    tree.levels = level
    if placement is not None:
        for name in tree.buffers:
            if name not in placement.locations:
                placement.locations[name] = (
                    placement.core_width / 2.0,
                    placement.core_height / 2.0,
                )
    return tree


def enable_nets_of(module: Module, library: Library) -> List[str]:
    """Nets driving sequential clock/enable pins (candidates for trees)."""
    candidates = []
    for net_name, net in module.nets.items():
        clock_sinks = 0
        for ref in net.connections:
            if ref.instance is None:
                continue
            cell = library.cells.get(module.instances[ref.instance].cell)
            if cell is None:
                continue
            pin = cell.pins.get(ref.pin)
            if pin is not None and pin.is_clock:
                clock_sinks += 1
        if clock_sinks > 0:
            candidates.append(net_name)
    return candidates


def run_cts(
    module: Module,
    library: Library,
    placement: Optional[Placement] = None,
    max_fanout: int = 12,
) -> CtsResult:
    """Buffer every clock/enable distribution net."""
    result = CtsResult()
    for net_name in enable_nets_of(module, library):
        tree = synthesize_tree(
            module, library, net_name, placement, max_fanout
        )
        result.trees[net_name] = tree
    return result
