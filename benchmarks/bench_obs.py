"""Observability overhead and flow profile (the repro.obs layer).

Two questions: (1) what does the *disabled* instrumentation cost on a
real conversion -- the layer promises near-zero -- and (2) what does
the per-phase profile of a traced DLX desynchronization look like?
Emits ``obs_profile.txt`` plus ``obs_overhead.json`` under
``benchmarks/results/``.
"""

import json
import os
import time

from conftest import RESULTS_DIR, emit, run_once

from repro.desync import Drdesync
from repro.engine import FlowEngine
from repro.obs import (
    MetricsRegistry,
    Tracer,
    metrics,
    phase_times,
    summary_report,
    trace,
)


def _convert(library, module):
    return Drdesync(library, engine=FlowEngine()).run(module)


def test_obs_overhead_and_profile(benchmark, hs_library, dlx_factory):
    kwargs = dict(registers=8, multiplier=False, width=16)

    # warm-up conversion so both timed runs see hot caches alike
    _convert(hs_library, dlx_factory(**kwargs))

    start = time.perf_counter()
    _convert(hs_library, dlx_factory(**kwargs))
    disabled_s = time.perf_counter() - start

    tracer = trace.set_tracer(Tracer())
    registry = metrics.set_registry(MetricsRegistry())
    try:
        start = time.perf_counter()
        result = run_once(
            benchmark, lambda: _convert(hs_library, dlx_factory(**kwargs))
        )
        enabled_s = time.perf_counter() - start
        phases = phase_times(tracer)
        report = summary_report(tracer)
    finally:
        trace.reset_tracer()
        metrics.reset_registry()

    assert result.network.controllers
    assert len(tracer) > 10
    assert {"group", "ffsub", "ddg", "network"} <= set(phases)
    assert registry.snapshot()["counters"]["desync.ffsub.replaced"] > 0

    overhead = {
        "bench": "obs_overhead",
        "design": "dlx_small",
        "instrumentation_disabled_s": round(disabled_s, 4),
        "instrumentation_enabled_s": round(enabled_s, 4),
        "tracing_overhead_pct": round(
            100.0 * (enabled_s - disabled_s) / disabled_s, 2
        ),
        "span_count": len(tracer),
        "phases_s": phases,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "obs_overhead.json"), "w") as handle:
        json.dump(overhead, handle, indent=2, sort_keys=True)
        handle.write("\n")

    emit(
        "obs_profile",
        "DLX desynchronization span profile (repro.obs)\n"
        f"disabled {disabled_s:.3f}s vs traced {enabled_s:.3f}s "
        f"({overhead['tracing_overhead_pct']:+.1f}%)\n\n" + report,
    )
