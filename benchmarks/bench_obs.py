"""Observability overhead and flow profile (the repro.obs layer).

Three questions: (1) what does the *disabled* instrumentation cost on
a real conversion -- the layer promises near-zero -- (2) what does the
per-phase profile of a traced DLX desynchronization look like, and
(3) what does the *disabled* profiler path cost on the warm flow?

The profiler gate uses the PR-7 telemetry methodology: paired
alternating rounds between two arms that differ only in the profiling
machinery state, each arm summarized by its minimum wall time (OS
noise is additive, the min isolates the intrinsic cost).  The
"disabled" arm runs inside an explicit disabled-profiler scope -- the
most expensive disabled path (thread-local override lookup + enabled
check per stage) -- and must stay within 2% of the plain default arm.

Emits ``obs_profile.txt`` plus ``obs_overhead.json`` (stamped with the
unified ``repro-bench/v1`` schema) under ``benchmarks/results/``.
"""

import gc
import time

from conftest import emit, emit_json, run_once, stamp_result

from repro.desync import Drdesync
from repro.engine import FlowEngine
from repro.obs import (
    MetricsRegistry,
    Profiler,
    Tracer,
    bench as obs_bench,
    metrics,
    phase_times,
    prof,
    profile_report,
    summary_report,
    trace,
)

#: acceptance ceiling for the profiler's disabled-path cost
PROFILER_MAX_DISABLED_OVERHEAD_PCT = 2.0
PROFILER_AB_ROUNDS = 8


def _convert(library, module):
    return Drdesync(library, engine=FlowEngine()).run(module)


def test_obs_overhead_and_profile(benchmark, hs_library, dlx_factory):
    kwargs = dict(registers=8, multiplier=False, width=16)

    # warm-up conversion so both timed runs see hot caches alike
    _convert(hs_library, dlx_factory(**kwargs))

    start = time.perf_counter()
    _convert(hs_library, dlx_factory(**kwargs))
    disabled_s = time.perf_counter() - start

    tracer = trace.set_tracer(Tracer())
    registry = metrics.set_registry(MetricsRegistry())
    try:
        start = time.perf_counter()
        result = run_once(
            benchmark, lambda: _convert(hs_library, dlx_factory(**kwargs))
        )
        enabled_s = time.perf_counter() - start
        phases = phase_times(tracer)
        report = summary_report(tracer)
    finally:
        trace.reset_tracer()
        metrics.reset_registry()

    assert result.network.controllers
    assert len(tracer) > 10
    assert {"group", "ffsub", "ddg", "network"} <= set(phases)
    assert registry.snapshot()["counters"]["desync.ffsub.replaced"] > 0

    overhead = {
        "bench": "obs_overhead",
        "design": "dlx_small",
        "instrumentation_disabled_s": round(disabled_s, 4),
        "instrumentation_enabled_s": round(enabled_s, 4),
        "tracing_overhead_pct": round(
            100.0 * (enabled_s - disabled_s) / disabled_s, 2
        ),
        "span_count": len(tracer),
        "phases_s": phases,
    }
    stamp_result(
        overhead,
        "obs_overhead",
        {"tracing_overhead_pct": overhead["tracing_overhead_pct"]},
    )
    emit_json("obs_overhead", overhead)

    emit(
        "obs_profile",
        "DLX desynchronization span profile (repro.obs)\n"
        f"disabled {disabled_s:.3f}s vs traced {enabled_s:.3f}s "
        f"({overhead['tracing_overhead_pct']:+.1f}%)\n\n" + report,
    )


def test_profiler_disabled_overhead(benchmark, hs_library, dlx_factory):
    """The profiler's disabled path costs <= 2% on the warm DLX flow.

    Paired alternating rounds (PR-7 telemetry methodology): the
    "scoped" arm runs inside ``prof.scoped`` with a disabled
    :class:`Profiler` -- exercising the thread-local override lookup
    and the per-stage/per-event enabled checks -- against the plain
    default arm.  Arm order swaps every round (drift in either
    direction hits both arms equally) and each timed run starts from a
    collected heap, so min-vs-min isolates the intrinsic cost.
    """
    kwargs = dict(registers=8, multiplier=False, width=16)

    # warm-up so both arms see hot generation/flow caches alike
    _convert(hs_library, dlx_factory(**kwargs))

    def timed_run(samples):
        gc.collect()
        start = time.perf_counter()
        _convert(hs_library, dlx_factory(**kwargs))
        samples.append(time.perf_counter() - start)

    plain, scoped = [], []
    disabled = Profiler(enabled=False)
    for round_ in range(PROFILER_AB_ROUNDS):
        arms = ["plain", "scoped"]
        if round_ % 2:
            arms.reverse()
        for arm in arms:
            if arm == "plain":
                timed_run(plain)
            else:
                with prof.scoped(disabled):
                    timed_run(scoped)

    disabled_overhead_pct = round(
        100.0 * (min(scoped) - min(plain)) / min(plain), 2
    )

    # one enabled run for the record: every stage gets a hot table and
    # the machinery overhead estimate lands in the summary footer
    profiler = Profiler(enabled=True)
    with prof.scoped(profiler):
        start = time.perf_counter()
        result = run_once(
            benchmark, lambda: _convert(hs_library, dlx_factory(**kwargs))
        )
        profiled_s = time.perf_counter() - start

    assert result.network.controllers
    assert len(profiler) > 5, "engine stages were not profiled"
    assert all(p.hot for p in profiler.profiles())
    estimate = profiler.overhead_estimate()
    assert estimate["profiled_wall_s"] > 0
    assert "profiler:" in summary_report(profiler=profiler)
    assert "profiler machinery overhead" in profile_report(profiler)

    payload = {
        "bench": "obs_profiler",
        "design": "dlx_small",
        "ab_rounds": PROFILER_AB_ROUNDS,
        "plain_min_s": round(min(plain), 4),
        "scoped_disabled_min_s": round(min(scoped), 4),
        "disabled_overhead_pct": disabled_overhead_pct,
        "profiled_s": round(profiled_s, 4),
        "profiled_stages": len(profiler),
        "machinery_overhead_s": round(estimate["machinery_s"], 6),
        "max_disabled_overhead_pct": PROFILER_MAX_DISABLED_OVERHEAD_PCT,
    }
    stamp_result(
        payload,
        "obs_profiler",
        {"disabled_overhead_pct": disabled_overhead_pct},
    )
    emit_json("obs_profiler_overhead", payload)

    gate = obs_bench.check_regression(
        payload["metrics"],
        name="obs_profiler",
        ceilings={
            "disabled_overhead_pct": PROFILER_MAX_DISABLED_OVERHEAD_PCT
        },
        lower_is_better=("disabled_overhead_pct",),
    )
    print(gate.render())
    assert gate.ok, (
        f"profiler disabled path costs {disabled_overhead_pct:+.2f}% "
        f"(ceiling {PROFILER_MAX_DISABLED_OVERHEAD_PCT}%)"
    )
