"""Figure 5.5: total power consumption vs delay selection.

The paper simulates the DDLX at every delay selection, converts the
switching activity (VCD -> SAIF) and reports total power at both
corners: power rises as the selection shortens the delay elements
because the circuit simply runs faster, and the best-case corner
(higher voltage, faster logic) consumes more than the slow one.

We do the same: simulate the reduced DDLX at each selection/corner
through the reactive memory environment, capture per-net switching
activity from the event simulator, and feed the power model.
"""

from conftest import emit, run_once

from repro.desync import DesyncOptions, Drdesync
from repro.designs import DlxMemories, assemble, dlx_core
from repro.designs.dlx_env import dlx_respond
from repro.power import activity_from_simulation, estimate_power
from repro.sim import Simulator
from repro.sim.reactive import ReactiveEnvironment

N = ("nop",)
PROGRAM = assemble([
    ("addi", 1, 0, 0x3A5), ("addi", 2, 0, 0x5A3), N, N,
    ("add", 3, 1, 2), ("xor", 4, 1, 2), N, N,
    ("sub", 5, 2, 1), ("or", 6, 3, 4), N, N,
])


def _selection_inputs(result, selection):
    values = {}
    for element in result.network.delay_elements.values():
        if not element.select_nets:
            continue
        sel = min(selection, len(element.taps) - 1)
        for bit_index, bit in enumerate(element.select_nets):
            values[bit] = (sel >> bit_index) & 1
    return values


def _power_at(library, result, selection, corner, items=14):
    simulator = Simulator(result.module, library, corner=corner)
    for bit, value in _selection_inputs(result, selection).items():
        simulator.set_input(bit, value)
    env = ReactiveEnvironment.attach(
        simulator, result, dlx_respond(DlxMemories(PROGRAM), width=16)
    )
    env.reset(0)
    start = simulator.now
    simulator.toggle_counts.clear()
    env.run_items(items, settle=5.0)
    activity = activity_from_simulation(
        simulator, duration_ns=simulator.now - start
    )
    report = estimate_power(result.module, library, activity, corner=corner)
    return report.total_mw


def test_fig_5_5_power_vs_delay_selection(benchmark, hs_library):
    selections = [7, 6, 5, 4, 3]  # the working settings of Figure 5.3

    def run():
        module = dlx_core(hs_library, registers=8, multiplier=False, width=16)
        result = Drdesync(hs_library).run(
            module, DesyncOptions(delay_mux_taps=8)
        )
        rows = []
        for selection in selections:
            rows.append(
                {
                    "selection": selection,
                    "worst_mw": _power_at(
                        hs_library, result, selection, "worst"
                    ),
                    "best_mw": _power_at(
                        hs_library, result, selection, "best"
                    ),
                }
            )
        return rows

    rows = run_once(benchmark, run)

    lines = [
        "Figure 5.5 -- DDLX total power vs delay selection",
        f"{'sel':>3s} {'worst (mW)':>11s} {'best (mW)':>10s}",
    ]
    for row in rows:
        lines.append(
            f"{row['selection']:>3d} {row['worst_mw']:>11.4f} "
            f"{row['best_mw']:>10.4f}"
        )
    lines.append(
        "paper: power rises as the selection number lowers (the circuit "
        "operates at higher frequency); best case above worst case"
    )
    emit("fig_5_5", "\n".join(lines))

    # power increases as the delay elements shorten (higher frequency)
    worst_series = [row["worst_mw"] for row in rows]
    best_series = [row["best_mw"] for row in rows]
    assert worst_series[-1] > worst_series[0]
    assert best_series[-1] > best_series[0]
    # the fast corner burns more power at every setting
    for row in rows:
        assert row["best_mw"] > row["worst_mw"]
