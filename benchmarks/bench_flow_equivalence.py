"""Flow-equivalence validation (sections 2.1 / 4.8).

Not a numbered table, but the property every other result rests on:
"each individual sequential element in the desynchronized circuit will
possess the exact same data sequence as its synchronous counterpart."
This bench runs the DLX under a program through both implementations
and compares the captured data sequence of every flip-flop against its
slave latch -- plus the same check on the five-region Figure 2.2
circuit at both corners.
"""

from conftest import emit, run_once

from repro.desync import Drdesync
from repro.designs import (
    DlxMemories,
    assemble,
    dlx_core,
    figure22_circuit,
)
from repro.designs.dlx_env import dlx_respond
from repro.liberty import core9_hs
from repro.sim import check_flow_equivalence
from repro.sim.flowequiv import check_flow_equivalence_reactive

N = ("nop",)
PROGRAM = assemble([
    ("addi", 1, 0, 5), ("addi", 2, 0, 7), N, N,
    ("add", 3, 1, 2), ("sub", 4, 2, 1), N, N,
    ("sw", 3, 0, 0), ("xor", 5, 3, 4), N, N,
    ("lw", 6, 0, 0), ("slt", 7, 4, 3), N, N,
])


def test_flow_equivalence_dlx_and_figure22(benchmark, hs_library):
    def run():
        results = {}

        module = dlx_core(hs_library, registers=8, multiplier=False, width=16)
        golden = module.clone()
        result = Drdesync(hs_library).run(module)

        def respond_factory(simulator):
            return dlx_respond(DlxMemories(PROGRAM), width=16)

        results["dlx"] = check_flow_equivalence_reactive(
            golden, result, hs_library, cycles=16,
            respond_factory=respond_factory,
        )

        for corner in ("worst", "best"):
            module = figure22_circuit(hs_library)
            golden = module.clone()
            result = Drdesync(hs_library).run(module)
            results[f"figure22@{corner}"] = check_flow_equivalence(
                golden,
                result,
                hs_library,
                cycles=10,
                stimulus=lambda k: {
                    f"din[{i}]": ((k * 5 + 1) >> i) & 1 for i in range(4)
                },
                corner=corner,
            )
        return results

    results = run_once(benchmark, run)

    lines = ["Flow-equivalence validation (the section 2.1 property)"]
    for name, report in results.items():
        lines.append(
            f"  {name:16s} sequential elements compared: "
            f"{report.compared:4d}  mismatches: {len(report.mismatches)}  "
            f"=> {'FLOW-EQUIVALENT' if report.equivalent else 'BROKEN'}"
        )
    lines.append(
        "every flip-flop's capture sequence equals its slave latch's -- "
        "standard synchronous test vectors remain valid (section 4.3)"
    )
    emit("flow_equivalence", "\n".join(lines))

    for name, report in results.items():
        assert report.compared > 0, name
        assert report.equivalent, (name, report.mismatches[:3])
