"""Service throughput benchmark: cold vs warm DLX submissions.

Starts a :class:`repro.service.ServiceDaemon` with a FRESH artifact
cache, fronts it with the HTTP server, and submits the DLX fixture
(32 registers, 32-bit, with multiplier) twice over the wire with
``reuse=False`` -- so both submissions run the full flow, but the
second one resolves every stage from the daemon's shared cache.  The
cold/warm wall times (and the implied jobs/min throughput) land in
``BENCH_service.json``; the run fails when the warm submission is not
at least ``--min-speedup`` (default 5) times faster, when the warm run
is not fully cache-served, or when the daemon does not survive a
poison job and drain gracefully.

Also scrapes ``/metrics`` into the output directory and copies the
per-job journals next to it, the way the ``service-smoke`` CI job
uploads them.

Run directly (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_service.py [OUT_DIR]
        [--min-speedup X] [--workers N] [--history FILE]

The speedup floor goes through the shared
:func:`repro.obs.bench.check_regression` gate; ``--history`` appends
the stamped result to the append-only store after the gate.
"""

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.obs import bench as obs_bench  # noqa: E402
from repro.service import (  # noqa: E402
    ServiceClient,
    ServiceDaemon,
    make_server,
)

DLX_SPEC = {
    "design": "dlx",
    "params": {"registers": 32, "multiplier": True, "width": 32},
}
MIN_SPEEDUP = 5.0


def run_once(client: ServiceClient, label: str) -> dict:
    """Submit the DLX spec (forced re-run) and wait; returns timing."""
    start = time.perf_counter()
    ticket = client.submit(dict(DLX_SPEC), reuse=False)
    status = client.wait(ticket["id"], timeout=1800.0, poll=0.02)
    wall = time.perf_counter() - start
    if status["state"] != "done":
        raise SystemExit(
            f"{label} submission failed: {status.get('error')}"
        )
    return {
        "job": ticket["id"],
        "wall_s": round(wall, 6),
        "jobs_per_min": round(60.0 / wall, 3),
        "stages": status["stages"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "out_dir",
        nargs="?",
        default=os.path.join(os.path.dirname(__file__), "results"),
    )
    parser.add_argument("--min-speedup", type=float, default=MIN_SPEEDUP)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--history",
        metavar="FILE",
        help="append the stamped result to this append-only store",
    )
    args = parser.parse_args(argv)
    os.makedirs(args.out_dir, exist_ok=True)

    run_dir = tempfile.mkdtemp(prefix="repro-service-bench-")
    daemon = ServiceDaemon(run_dir=run_dir, workers=args.workers)
    server = make_server(daemon).start_background()
    client = ServiceClient(server.url, timeout=60.0)
    try:
        print(f"daemon on {server.url} (cold cache at {daemon.cache.directory})")
        cold = run_once(client, "cold")
        print(
            f"cold: {cold['wall_s']:.3f}s "
            f"({cold['jobs_per_min']:.2f} jobs/min, "
            f"{cold['stages']['cached']}/{cold['stages']['total']} cached)"
        )
        warm = run_once(client, "warm")
        print(
            f"warm: {warm['wall_s']:.3f}s "
            f"({warm['jobs_per_min']:.2f} jobs/min, "
            f"{warm['stages']['cached']}/{warm['stages']['total']} cached)"
        )
        speedup = cold["wall_s"] / warm["wall_s"]
        print(f"cross-job cache speedup: {speedup:.1f}x")

        # failure isolation: a poison job must not take the daemon down
        poison = client.submit(
            {"design": "dlx", "params": {"bogus": True}}, reuse=False
        )
        poison_state = client.wait(poison["id"], timeout=120.0)["state"]
        health = client.health()["status"]
        print(f"poison job settled {poison_state!r}; daemon health {health!r}")

        metrics = client.metrics()
        dedupe_ticket = client.submit(dict(DLX_SPEC))  # reuse=True default
        payload = {
            "bench": "service",
            "design": DLX_SPEC,
            "cold": cold,
            "warm": warm,
            "speedup": round(speedup, 3),
            "min_speedup": args.min_speedup,
            "dedupe": {
                "deduped": dedupe_ticket["deduped"],
                "job": dedupe_ticket["id"],
            },
            "poison_job_state": poison_state,
            "health_after_poison": health,
            "jobs": metrics["service"]["jobs"],
            "cache": metrics["service"]["cache"],
        }

        # graceful drain: SIGTERM-equivalent shutdown over the API
        client.shutdown()
        deadline = time.monotonic() + 30.0
        while daemon.queue.accepting and time.monotonic() < deadline:
            time.sleep(0.05)
        payload["drained"] = not daemon.queue.accepting
        print(f"graceful drain: {payload['drained']}")
    finally:
        server.stop()
        daemon.close(timeout=30.0)

    # only the ratio is a gated metric -- jobs/min is machine-speed
    # bound and stays in the free-form payload (see DESIGN.md)
    obs_bench.stamp(payload, "service", {"speedup": payload["speedup"]},
                    cwd=ROOT)
    out_path = os.path.join(args.out_dir, "BENCH_service.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path}")

    with open(os.path.join(args.out_dir, "service_metrics.json"), "w") as handle:
        json.dump(metrics, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # preserve the job journals the way the CI artifact upload expects
    jobs_dir = os.path.join(run_dir, "jobs")
    if os.path.isdir(jobs_dir):
        dest = os.path.join(args.out_dir, "service_journals")
        shutil.rmtree(dest, ignore_errors=True)
        shutil.copytree(jobs_dir, dest)
        daemon_journal = os.path.join(run_dir, "daemon.jsonl")
        if os.path.isfile(daemon_journal):
            shutil.copy(daemon_journal, dest)
        print(f"copied job journals to {dest}")
    shutil.rmtree(run_dir, ignore_errors=True)

    report = obs_bench.check_regression(
        payload["metrics"],
        name="service",
        floors={"speedup": args.min_speedup},
    )
    print(report.render())
    if args.history:
        obs_bench.append_history(payload, args.history)
        print(f"recorded service -> {args.history}")

    failures = []
    if not report.ok:
        failures.append(
            f"warm submission only {speedup:.1f}x faster "
            f"(target >= {args.min_speedup}x)"
        )
    if warm["stages"]["cached"] != warm["stages"]["total"]:
        failures.append("warm run was not fully cache-served")
    if not dedupe_ticket["deduped"]:
        failures.append("identical reuse=True submission did not dedupe")
    if poison_state != "failed" or health != "ok":
        failures.append("daemon did not isolate the poison job")
    if not payload["drained"]:
        failures.append("daemon did not drain gracefully on shutdown")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("service bench ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
