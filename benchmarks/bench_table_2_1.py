"""Table 2.1: truth table of the C-Muller element.

Builds 2- to 10-input C-elements out of standard cells (section 3.1.5)
and verifies the rendezvous behaviour by simulation: all 0's -> 0,
all 1's -> 1, anything else -> output unchanged.
"""

import itertools

from conftest import emit, run_once

from repro.desync import build_cmuller
from repro.liberty import GateChooser
from repro.netlist import Module, PortDirection
from repro.sim import Simulator


def _verify_cmuller(library, n_inputs: int) -> int:
    """Exhaustively drive an n-input C element; returns vectors checked."""
    module = Module(f"cm{n_inputs}")
    inputs = []
    for index in range(n_inputs):
        module.add_port(f"i{index}", PortDirection.INPUT)
        inputs.append(f"i{index}")
    module.add_port("z", PortDirection.OUTPUT)
    build_cmuller(module, inputs, "z", GateChooser(library))
    simulator = Simulator(module, library)

    checked = 0
    for start in (0, 1):
        vector = tuple([start] * n_inputs)
        for name, value in zip(inputs, vector):
            simulator.set_input(name, value)
        simulator.settle(max_time=100)
        assert simulator.value("z") == start
        held = start
        space = (
            itertools.product((0, 1), repeat=n_inputs)
            if n_inputs <= 4
            else [
                tuple(1 if i == k else start for i in range(n_inputs))
                for k in range(n_inputs)
            ]
        )
        for vector in space:
            for name, value in zip(inputs, vector):
                simulator.set_input(name, value)
            simulator.settle(max_time=100)
            if all(v == 1 for v in vector):
                held = 1
            elif all(v == 0 for v in vector):
                held = 0
            assert simulator.value("z") == held, (n_inputs, vector)
            checked += 1
    return checked


def test_table_2_1_cmuller_truth_table(benchmark, hs_library):
    sizes = [2, 3, 4, 5, 8, 10]

    def run():
        return {n: _verify_cmuller(hs_library, n) for n in sizes}

    counts = run_once(benchmark, run)
    lines = ["Table 2.1 -- C-Muller element truth table (verified by sim)"]
    lines.append("  inputs   output")
    lines.append("  all 0's  0")
    lines.append("  all 1's  1")
    lines.append("  other    unchanged")
    lines.append(
        "verified sizes: "
        + ", ".join(f"{n} inputs ({counts[n]} vectors)" for n in sizes)
    )
    emit("table_2_1", "\n".join(lines))
    assert all(count > 0 for count in counts.values())
