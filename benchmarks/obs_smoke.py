"""CI observability smoke: trace + metrics + waveforms on a reduced DLX.

Drives the ``drdesync`` CLI end-to-end on a reduced DLX core
(8 registers, 16-bit, no multiplier) with ``--trace``/``--metrics``/
``--journal``/``--profile --profile-out`` plus the simulation-level
artifacts ``--vcd``/``--handshake-report``, validates everything (the
VCD must round-trip through ``repro.obs.read_vcd``, the handshake
report must cross-validate against the analytic model, the profile
must carry per-stage hot tables and a speedscope document), and
derives ``BENCH_obs.json`` -- per-engine-phase wall times read back
from the Chrome trace file plus the measured effective period, the
way a consumer of the uploaded CI artifact would.

Run directly (not collected by pytest)::

    PYTHONPATH=src python benchmarks/obs_smoke.py [OUT_DIR]

OUT_DIR defaults to ``benchmarks/results``.
"""

import json
import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.cli import main as cli_main  # noqa: E402
from repro.designs import dlx_core  # noqa: E402
from repro.liberty import core9_hs  # noqa: E402
from repro.netlist import Netlist, save_verilog  # noqa: E402
from repro.obs import bench as obs_bench  # noqa: E402
from repro.obs import phase_times, read_vcd  # noqa: E402

EXPECTED_PHASES = {
    "import", "group", "ffsub", "ddg", "delays", "network", "constraints",
}
EXPECTED_SPANS = {
    "grouping", "validate_independence", "ffsub", "ddg",
    "delays.characterize", "network.wiring", "clean_logic",
}


def main(out_dir=None):
    out_dir = out_dir or os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(out_dir, exist_ok=True)

    library = core9_hs()
    module = dlx_core(library, registers=8, multiplier=False, width=16)
    netlist = Netlist()
    netlist.add_module(module)
    src = os.path.join(out_dir, "dlx_small.v")
    save_verilog(netlist, src)

    trace_file = os.path.join(out_dir, "obs_trace.json")
    metrics_file = os.path.join(out_dir, "obs_metrics.json")
    journal_file = os.path.join(out_dir, "obs_journal.jsonl")
    vcd_file = os.path.join(out_dir, "obs_handshake.vcd")
    report_file = os.path.join(out_dir, "handshake_report.json")
    profile_dir = os.path.join(out_dir, "obs_profile")
    code = cli_main([
        src,
        "-o", os.path.join(out_dir, "dlx_small_desync.v"),
        "--sdc", os.path.join(out_dir, "dlx_small.sdc"),
        "--no-cache",
        "--journal", journal_file,
        "--trace", trace_file,
        "--metrics", metrics_file,
        "--profile",
        "--profile-out", profile_dir,
        "--vcd", vcd_file,
        "--handshake-report", report_file,
        "--observe-items", "8",
    ])
    if code != 0:
        raise SystemExit(f"drdesync exited {code}")

    with open(trace_file) as handle:
        document = json.load(handle)
    events = [e for e in document["traceEvents"] if e["ph"] == "X"]
    names = {e["name"] for e in events}
    missing = EXPECTED_SPANS - names
    if missing:
        raise SystemExit(f"trace is missing spans: {sorted(missing)}")

    with open(metrics_file) as handle:
        snapshot = json.load(handle)
    for key in ("desync.grouping.regions", "desync.summary.cells"):
        if key not in snapshot["gauges"]:
            raise SystemExit(f"metrics snapshot is missing gauge {key!r}")
    if snapshot["histograms"]["desync.region.size"]["count"] < 1:
        raise SystemExit("region-size histogram is empty")

    phases = phase_times(trace_file=trace_file)
    missing = EXPECTED_PHASES - set(phases)
    if missing:
        raise SystemExit(f"trace is missing engine phases: {sorted(missing)}")

    # the VCD waveform must be spec-valid (round-trip the parser) and
    # actually contain handshake activity
    dump = read_vcd(vcd_file)
    if not dump["names"] or not dump["changes"]:
        raise SystemExit("VCD waveform is empty")
    if not any(name.startswith("req_") for name in dump["names"]):
        raise SystemExit("VCD is missing the handshake request nets")

    with open(report_file) as handle:
        report = json.load(handle)
    if report.get("error"):
        raise SystemExit(f"handshake simulation failed: {report['error']}")
    if (report.get("watchdog") or {}).get("deadlock") is not None:
        raise SystemExit("watchdog flagged a deadlock on the healthy DLX")
    measured = report.get("effective_period_measured_ns")
    if not measured or measured <= 0:
        raise SystemExit("handshake report has no measured period")
    for region, info in report["regions"].items():
        if info["tokens"] < 2:
            raise SystemExit(f"region {region} moved {info['tokens']} tokens")

    # the CLI --profile artifacts: schema-tagged JSON with per-stage
    # hot tables plus an embedded speedscope document
    with open(os.path.join(profile_dir, "profile.json")) as handle:
        profile = json.load(handle)
    if profile.get("schema") != "repro-profile/v1":
        raise SystemExit(f"unexpected profile schema: {profile.get('schema')}")
    if not profile["stages"] or not all(s["hot"] for s in profile["stages"]):
        raise SystemExit("profile has stages without hot-function tables")
    speedscope = profile["speedscope"]
    if len(speedscope["profiles"]) != profile["stage_count"]:
        raise SystemExit("speedscope document does not cover every stage")
    collapsed = os.path.join(profile_dir, "profile.collapsed.txt")
    if os.path.getsize(collapsed) == 0:
        raise SystemExit("collapsed-stack export is empty")

    bench = {
        "bench": "obs_smoke",
        "design": "dlx_small",
        "phases_s": phases,
        "total_s": round(sum(phases.values()), 6),
        "span_count": len(events),
        "regions": snapshot["gauges"]["desync.grouping.regions"],
        "cells": snapshot["gauges"]["desync.summary.cells"],
        "effective_period_measured_ns": measured,
        "critical_region_measured": report["critical_region_measured"],
        "vcd_nets": len(dump["names"]),
        "vcd_changes": len(dump["changes"]),
        "profiled_stages": profile["stage_count"],
    }
    obs_bench.stamp(
        bench,
        "obs_smoke",
        {"profiled_stages": profile["stage_count"]},
        cwd=ROOT,
    )
    bench_file = os.path.join(out_dir, "BENCH_obs.json")
    with open(bench_file, "w") as handle:
        json.dump(bench, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"obs smoke OK: {len(events)} spans, "
          f"{bench['total_s']:.3f}s across {len(phases)} phases, "
          f"{profile['stage_count']} profiled stages, "
          f"VCD {len(dump['names'])} nets / {len(dump['changes'])} changes, "
          f"measured period {measured:.3f} ns")
    print(f"wrote {bench_file}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else None))
