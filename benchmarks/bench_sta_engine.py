"""STA engine benchmark: compiled vs reference backend.

Runs the timing workload of a full conversion-plus-signoff pass on the
reduced DLX under both STA backends:

1. **multi-corner** -- ``analyze`` (with slacks) and ``ssta_analyze``
   at every library corner on the synchronous core;
2. **regions** -- per-region cloud delays (``region_delays``) and
   per-region critical paths (``region_critical_path``) of the
   desynchronized core, per corner;
3. **ladder** -- delay-element ladder characterisation (100 levels)
   per corner, result memoisation off so the graph work is measured;
4. **ECO** -- repeated wire-parasitic annotation of a net subset
   followed by re-analysis at both corners plus region re-measurement
   (the chapter-6 calibration loop).

The reference backend rebuilds its dict graph per call per corner; the
compiled backend builds flat base graphs once, rescales per corner and
re-times annotation deltas incrementally.  Every number both backends
produce -- critical delays, endpoints, full critical paths, endpoint
slacks, region-delay maps, ladder delays, SSTA moments -- is asserted
*exactly equal* before any timing is reported.

Speedup ratios (not absolute seconds) are the regression metric: both
backends see the same machine, so the ratio survives CI-runner noise.

Run directly (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_sta_engine.py [OUT_DIR]
        [--check BASELINE_JSON] [--history FILE] [--repeats N]

``--check`` gates the fresh combined speedup through
:func:`repro.obs.bench.check_regression` against a committed baseline
``BENCH_sta.json`` (>25% drop fails; with enough ``--history`` points
the median/MAD statistical band takes over).  ``--history`` appends
the stamped result to the append-only store after the gate.
"""

import argparse
import json
import os
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.designs import dlx_core  # noqa: E402
from repro.desync import Drdesync  # noqa: E402
from repro.desync import delays as delays_mod  # noqa: E402
from repro.desync.delays import characterize_ladder  # noqa: E402
from repro.desync.network import region_delays  # noqa: E402
from repro.liberty import core9_hs  # noqa: E402
from repro.obs import bench as obs_bench  # noqa: E402
from repro.sta import (  # noqa: E402
    analyze,
    annotate_wires,
    invalidate_module,
    node_sort_key,
    region_critical_path,
    ssta_analyze,
)

CLOCK_PERIOD = 12.0
LADDER_LEVELS = 100
ECO_ITERATIONS = 6
REGRESSION_TOLERANCE = 0.25  # fail when speedup drops >25% vs baseline


def _eco_nets(module):
    """A deterministic ~10% slice of the desynchronized module's nets."""
    names = sorted(module.nets)
    return names[:: max(1, len(names) // max(1, len(names) // 10))][:64]


def _eco_annotation(nets, iteration):
    caps = {
        net: 0.003 + 0.0004 * ((iteration + k) % 5)
        for k, net in enumerate(nets)
    }
    wire_delays = {
        net: 0.01 + 0.002 * ((iteration + k) % 7)
        for k, net in enumerate(nets)
    }
    return caps, wire_delays


def _set_wires(module, caps, wire_delays, backend):
    """Annotate parasitics the way each backend's flow would."""
    if backend == "compiled":
        annotate_wires(module, caps, wire_delays, replace=True)
    else:
        module.attributes["net_wire_cap"] = dict(caps)
        module.attributes["net_wire_delay"] = dict(wire_delays)


def _report_signature(report):
    return (
        report.critical_delay,
        report.critical_endpoint,
        tuple((p.node, p.arrival) for p in report.path),
        tuple(sorted(report.endpoint_slacks.items(),
                     key=lambda kv: node_sort_key(kv[0]))),
    )


def _ssta_signature(report):
    return (
        report.worst.mean,
        report.worst.global_sens,
        report.worst.local_var,
        report.worst_endpoint,
    )


def run_workload(golden, result, library, backend):
    """One full timing pass; returns (phase timings, exact signature)."""
    corners = sorted(library.corners)
    region_map = result.region_map
    regions = {
        name: frozenset(region.instances)
        for name, region in sorted(region_map.regions.items())
    }
    eco_nets = _eco_nets(result.module)

    # cold start: both backends begin without annotations or caches
    for module in (golden, result.module):
        invalidate_module(module)
        _set_wires(module, {}, {}, backend)
    delays_mod._LADDER_MEMO.clear()
    delays_mod._CHAIN_GRAPHS.clear()

    timings = {}
    signature = {}

    start = time.perf_counter()
    for corner in corners:
        report = analyze(
            golden, library, corner, clock_period=CLOCK_PERIOD,
            backend=backend,
        )
        signature[f"sta:{corner}"] = _report_signature(report)
        stat = ssta_analyze(golden, library, corner, backend=backend)
        signature[f"ssta:{corner}"] = _ssta_signature(stat)
    timings["multi_corner"] = time.perf_counter() - start

    start = time.perf_counter()
    for corner in corners:
        clouds = region_delays(
            result.module, library, region_map, corner, backend=backend
        )
        signature[f"regions:{corner}"] = tuple(sorted(clouds.items()))
        signature[f"region_cp:{corner}"] = tuple(
            (name, region_critical_path(
                result.module, library, instances, corner, backend=backend
            ))
            for name, instances in regions.items()
        )
    timings["regions"] = time.perf_counter() - start

    start = time.perf_counter()
    for corner in corners:
        ladder = characterize_ladder(
            library, corner, max_length=LADDER_LEVELS,
            backend=backend, memoize=False,
        )
        signature[f"ladder:{corner}"] = tuple(ladder.rise_delays)
    timings["ladder"] = time.perf_counter() - start

    start = time.perf_counter()
    for iteration in range(ECO_ITERATIONS):
        caps, wire_delays = _eco_annotation(eco_nets, iteration)
        _set_wires(result.module, caps, wire_delays, backend)
        for corner in corners:
            report = analyze(result.module, library, corner,
                             backend=backend)
            signature[f"eco:{iteration}:{corner}"] = _report_signature(
                report
            )
            clouds = region_delays(
                result.module, library, region_map, corner, backend=backend
            )
            signature[f"eco_regions:{iteration}:{corner}"] = tuple(
                sorted(clouds.items())
            )
    timings["eco"] = time.perf_counter() - start

    timings["total"] = sum(timings.values())
    return timings, signature


def run_bench(repeats=3):
    library = core9_hs()
    module = dlx_core(library, registers=8, multiplier=False, width=16)
    golden = module.clone()
    result = Drdesync(library).run(module)

    best = {}
    signatures = {}
    for backend in ("reference", "compiled"):
        for _ in range(repeats):
            timings, signature = run_workload(
                golden, result, library, backend
            )
            if backend in signatures and signatures[backend] != signature:
                raise SystemExit(f"{backend}: non-deterministic repeat")
            signatures[backend] = signature
            if backend not in best or timings["total"] < best[backend]["total"]:
                best[backend] = timings

    # -- backend parity: every reported number must be exactly equal
    ref_sig, cmp_sig = signatures["reference"], signatures["compiled"]
    if set(ref_sig) != set(cmp_sig):
        raise SystemExit("backends measured different quantities")
    mismatched = [key for key in ref_sig if ref_sig[key] != cmp_sig[key]]
    if mismatched:
        raise SystemExit(
            "compiled backend diverges from reference on: "
            + ", ".join(mismatched[:5])
        )

    phases = {}
    speedup = {}
    for phase in ("multi_corner", "regions", "ladder", "eco", "total"):
        ref_s = best["reference"][phase]
        cmp_s = best["compiled"][phase]
        phases[phase] = {
            "reference_s": round(ref_s, 6),
            "compiled_s": round(cmp_s, 6),
        }
        speedup[phase if phase != "total" else "combined"] = round(
            ref_s / max(cmp_s, 1e-12), 3
        )

    corners = sorted(library.corners)
    bench = {
        "bench": "sta_engine",
        "design": "dlx_small (8 regs, 16-bit, no multiplier)",
        "workload": (
            f"{len(corners)}-corner STA+SSTA, per-region delays/paths, "
            f"{LADDER_LEVELS}-level ladder x{len(corners)}, "
            f"{ECO_ITERATIONS}-iteration ECO annotate+retime loop"
        ),
        "repeats": repeats,
        "corners": corners,
        "regions": len(result.region_map.regions),
        "phases": phases,
        "speedup": speedup,
        "identical_results": True,
    }
    obs_bench.stamp(
        bench,
        "sta_engine",
        {"combined_speedup": speedup["combined"]},
        cwd=ROOT,
    )
    return bench


def check_regression(bench, baseline_path, history_path=None):
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    base = obs_bench.baseline_metrics(baseline) or {
        "combined_speedup": baseline["speedup"]["combined"]
    }
    history = (
        obs_bench.load_history(history_path, "sta_engine")
        if history_path
        else None
    )
    report = obs_bench.check_regression(
        bench["metrics"],
        base,
        name="sta_engine",
        tolerance=REGRESSION_TOLERANCE,
        history=history,
    )
    print(report.render())
    return report.exit_code()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "out_dir",
        nargs="?",
        default=os.path.join(os.path.dirname(__file__), "results"),
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE_JSON",
        help="fail when combined speedup regresses >25%% vs this baseline",
    )
    parser.add_argument(
        "--history",
        metavar="FILE",
        help="append-only history store: consulted for the statistical "
        "gate, then appended to after the run",
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    bench = run_bench(repeats=args.repeats)

    os.makedirs(args.out_dir, exist_ok=True)
    out_file = os.path.join(args.out_dir, "BENCH_sta.json")
    with open(out_file, "w") as handle:
        json.dump(bench, handle, indent=2, sort_keys=True)
        handle.write("\n")

    speedup = bench["speedup"]
    print(
        "sta engine: "
        f"multi-corner {speedup['multi_corner']:.2f}x, "
        f"regions {speedup['regions']:.2f}x, "
        f"ladder {speedup['ladder']:.2f}x, "
        f"eco {speedup['eco']:.2f}x, "
        f"combined {speedup['combined']:.2f}x "
        "(reference/compiled wall time, identical results)"
    )
    print(f"wrote {out_file}")

    status = 0
    if args.check:
        status = check_regression(bench, args.check, args.history)
    if args.history:
        obs_bench.append_history(bench, args.history)
        print(f"recorded sta_engine -> {args.history}")
    return status


if __name__ == "__main__":
    sys.exit(main())
