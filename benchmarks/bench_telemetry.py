"""Telemetry overhead + soak benchmark for the service daemon.

Measures what PR 7's always-on telemetry costs: two daemons, identical
except ``telemetry=`` on/off, are kept alive side by side and warm
forced re-runs alternate between them in paired rounds, so scheduler
drift hits both arms equally.  The comparison uses the per-arm *minimum*
warm latency -- OS noise on a warm job is strictly additive, so the
min isolates the intrinsic cost; the enabled arm must stay within
``--max-overhead`` (default 5%) of the disabled baseline.
On top of that it soaks the
telemetry daemon with ``--soak`` jobs (default 50) and verifies the
flat-memory guarantees: bounded per-job tracer registry, plateaued
retained-span count, ring-buffer series that never exceed their
capacity, live SLO verdicts, and a Perfetto-valid ``/jobs/<id>/trace``
whose stage spans match that job's journal.

Writes ``BENCH_telemetry.json`` plus the dashboard HTML, a
``/timeseries`` snapshot and one job trace into the output directory,
the way the ``telemetry-smoke`` CI job uploads them.

Run directly (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_telemetry.py [OUT_DIR]
        [--max-overhead PCT] [--warm-jobs N] [--soak N] [--history FILE]

The overhead ceiling goes through the shared
:func:`repro.obs.bench.check_regression` gate (lower is better);
``--history`` appends the stamped result to the append-only store
after the gate.
"""

import argparse
import json
import os
import shutil
import statistics
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.engine import read_journal  # noqa: E402
from repro.obs import bench as obs_bench  # noqa: E402
from repro.service import (  # noqa: E402
    JobSpec,
    ServiceClient,
    ServiceDaemon,
    make_server,
)

# A/B arm: the reduced DLX fixture.  Its ~40 ms warm latency is large
# enough that a 5% bound (~2 ms) sits well above both the measured
# telemetry cost (~0.2 ms/job) and per-sample scheduler noise; the
# original counter design (~5 ms warm) drowned the signal in noise.
AB_SPEC = {
    "design": "dlx",
    "params": {"registers": 8, "multiplier": False, "width": 16},
}
# soak arm: the cheapest design, so 50 sequential jobs stay fast
SOAK_SPEC = {"design": "counter", "params": {"width": 8}}
MAX_OVERHEAD_PCT = 5.0


def _timed_job(client: ServiceClient, spec: dict) -> float:
    start = time.perf_counter()
    ticket = client.submit(dict(spec), reuse=False)
    status = client.wait(ticket["id"], timeout=600.0, poll=0.002)
    wall = time.perf_counter() - start
    if status["state"] != "done":
        raise SystemExit(f"job failed: {status.get('error')}")
    return wall


def measure_overhead(warm_jobs: int) -> dict:
    """Paired warm-job A/B between a telemetry-off and -on daemon.

    Both daemons live for the whole measurement and rounds alternate
    off/on, so load spikes land on both arms.  Each arm is summarized
    by its minimum warm latency (noise is additive; the min is the
    intrinsic cost).
    """
    arms = {}
    for telemetry in (False, True):
        run_dir = tempfile.mkdtemp(prefix="repro-telemetry-bench-")
        daemon = ServiceDaemon(
            run_dir=run_dir, workers=1, telemetry=telemetry
        )
        server = make_server(daemon).start_background()
        arms[telemetry] = {
            "run_dir": run_dir,
            "daemon": daemon,
            "server": server,
            "client": ServiceClient(server.url, timeout=60.0),
            "warm": [],
        }
    try:
        cold = {
            t: _timed_job(arms[t]["client"], AB_SPEC) for t in (False, True)
        }
        for _ in range(warm_jobs):
            for telemetry in (False, True):
                arm = arms[telemetry]
                arm["warm"].append(_timed_job(arm["client"], AB_SPEC))
    finally:
        for arm in arms.values():
            arm["server"].stop()
            arm["daemon"].close(timeout=30.0)
            shutil.rmtree(arm["run_dir"], ignore_errors=True)

    def summary(telemetry: bool) -> dict:
        warm = arms[telemetry]["warm"]
        return {
            "telemetry": telemetry,
            "cold_s": round(cold[telemetry], 6),
            "warm_min_s": round(min(warm), 6),
            "warm_median_s": round(statistics.median(warm), 6),
            "warm_mean_s": round(statistics.fmean(warm), 6),
            "warm_jobs": warm_jobs,
        }

    return {"baseline": summary(False), "enabled": summary(True)}


def validate_trace(document: dict, journal_path: str) -> list:
    """Perfetto schema checks + stage-set agreement with the journal."""
    problems = []
    complete = [
        e for e in document.get("traceEvents", []) if e.get("ph") == "X"
    ]
    if not complete:
        problems.append("trace has no complete events")
    for event in complete:
        if not {"name", "ts", "dur", "pid", "tid"} <= set(event):
            problems.append(f"malformed trace event: {event}")
            break
        if event["ts"] < 0 or event["dur"] < 0:
            problems.append(f"negative ts/dur in {event['name']}")
    # executed stages leave ``stage:<name>`` spans, cache-served ones
    # ``cache:<name>`` (hit); together they cover every settled stage
    trace_stages = {
        e["name"].split(":", 1)[1]
        for e in complete
        if e["name"].startswith(("stage:", "cache:"))
    }
    journal_stages = {
        e["stage"]
        for e in read_journal(journal_path)
        if e.get("event") == "stage_end"
    }
    if trace_stages != journal_stages:
        problems.append(
            f"trace stages {sorted(trace_stages)} != journal "
            f"stages {sorted(journal_stages)}"
        )
    return problems


def soak(out_dir: str, jobs: int) -> dict:
    """Soak one telemetry daemon and snapshot its HTTP surfaces."""
    run_dir = tempfile.mkdtemp(prefix="repro-telemetry-soak-")
    daemon = ServiceDaemon(
        run_dir=run_dir,
        workers=1,
        timeseries_interval=0.1,
        max_traces=16,
        max_trace_spans=500,
    )
    server = make_server(daemon).start_background()
    client = ServiceClient(server.url, timeout=60.0)
    problems = []
    try:
        span_counts = []
        last_ticket = None
        for _ in range(jobs):
            last_ticket = client.submit(dict(SOAK_SPEC), reuse=False)
            client.wait(last_ticket["id"], timeout=600.0, poll=0.002)
            span_counts.append(daemon.telemetry.span_count())

        if daemon.telemetry.trace_count() > 16:
            problems.append("tracer registry exceeded max_traces")
        if max(span_counts[-5:]) > max(span_counts[: jobs // 2]):
            problems.append(
                f"retained spans still growing: {span_counts[-5:]} vs "
                f"first-half max {max(span_counts[:jobs // 2])}"
            )

        time.sleep(0.3)  # a few sampler ticks
        series = client.timeseries()
        if not series["series"]:
            problems.append("/timeseries returned no series")
        for name, entry in series["series"].items():
            if len(entry["points"]) > series["capacity"]:
                problems.append(f"series {name} exceeded ring capacity")

        health = client.health()
        slos = health.get("slos", {})
        if not slos.get("objectives"):
            problems.append("/health carries no SLO verdicts")

        trace_doc = client.trace(last_ticket["id"])
        problems += validate_trace(
            trace_doc, daemon.job_journal_path(last_ticket["id"])
        )

        html = client.dashboard()
        if "<!DOCTYPE html>" not in html or "sparkline" not in html:
            problems.append("/dashboard payload does not look like the UI")

        with open(os.path.join(out_dir, "dashboard.html"), "w") as handle:
            handle.write(html)
        with open(os.path.join(out_dir, "timeseries.json"), "w") as handle:
            json.dump(series, handle, indent=2, sort_keys=True)
            handle.write("\n")
        with open(os.path.join(out_dir, "job_trace.json"), "w") as handle:
            json.dump(trace_doc, handle, indent=1)
            handle.write("\n")

        return {
            "jobs": jobs,
            "retained_traces": daemon.telemetry.trace_count(),
            "evicted_traces": daemon.telemetry.evicted_traces,
            "retained_spans_final": span_counts[-1],
            "retained_spans_peak": max(span_counts),
            "series_count": len(series["series"]),
            "timeseries_samples": series["samples"],
            "slo_status": slos.get("status"),
            "slos": {
                o["name"]: o["status"] for o in slos.get("objectives", [])
            },
            "trace_events": len(trace_doc.get("traceEvents", [])),
            "problems": problems,
        }
    finally:
        server.stop()
        daemon.close(timeout=30.0)
        shutil.rmtree(run_dir, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "out_dir",
        nargs="?",
        default=os.path.join(os.path.dirname(__file__), "results"),
    )
    parser.add_argument(
        "--max-overhead", type=float, default=MAX_OVERHEAD_PCT,
        help="max warm-job slowdown with telemetry on, in percent",
    )
    parser.add_argument("--warm-jobs", type=int, default=30)
    parser.add_argument("--soak", type=int, default=50)
    parser.add_argument(
        "--history",
        metavar="FILE",
        help="append the stamped result to this append-only store",
    )
    args = parser.parse_args(argv)
    os.makedirs(args.out_dir, exist_ok=True)

    # paired A/B: each daemon owns a fresh cache + run dir, warm jobs
    # alternate between the two live daemons
    for spec in (AB_SPEC, SOAK_SPEC):
        JobSpec(**spec).validate()
    measured = measure_overhead(warm_jobs=args.warm_jobs)
    baseline, enabled = measured["baseline"], measured["enabled"]
    print(
        f"telemetry off: warm min {baseline['warm_min_s'] * 1e3:.2f} ms "
        f"(median {baseline['warm_median_s'] * 1e3:.2f} ms)"
    )
    print(
        f"telemetry on:  warm min {enabled['warm_min_s'] * 1e3:.2f} ms "
        f"(median {enabled['warm_median_s'] * 1e3:.2f} ms)"
    )
    overhead_pct = (
        (enabled["warm_min_s"] - baseline["warm_min_s"])
        / baseline["warm_min_s"]
        * 100.0
    )
    print(f"telemetry overhead: {overhead_pct:+.2f}% (warm min)")

    print(f"soaking {args.soak} sequential jobs ...")
    soak_result = soak(args.out_dir, args.soak)
    print(
        f"soak: {soak_result['retained_traces']} tracers retained, "
        f"{soak_result['retained_spans_final']} spans, "
        f"{soak_result['series_count']} series, "
        f"SLO status {soak_result['slo_status']!r}"
    )

    payload = {
        "bench": "telemetry",
        "design": AB_SPEC,
        "soak_design": SOAK_SPEC,
        "baseline": baseline,
        "enabled": enabled,
        "overhead_pct": round(overhead_pct, 3),
        "max_overhead_pct": args.max_overhead,
        "soak": soak_result,
    }
    obs_bench.stamp(
        payload,
        "telemetry",
        {"overhead_pct": payload["overhead_pct"]},
        cwd=ROOT,
    )
    out_path = os.path.join(args.out_dir, "BENCH_telemetry.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path}")

    report = obs_bench.check_regression(
        payload["metrics"],
        name="telemetry",
        ceilings={"overhead_pct": args.max_overhead},
        lower_is_better=("overhead_pct",),
    )
    print(report.render())
    if args.history:
        obs_bench.append_history(payload, args.history)
        print(f"recorded telemetry -> {args.history}")

    failures = list(soak_result["problems"])
    if not report.ok:
        failures.append(
            f"telemetry overhead {overhead_pct:.2f}% exceeds "
            f"{args.max_overhead}%"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("telemetry bench ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
