"""Figure 2.4: the desynchronization-protocol concurrency ladder.

Regenerates the ladder annotations: reachable state count per protocol
(10 / 8 / 6 / 5 / 4 down the concurrency order), the live +
flow-equivalent classification of the middle band, the NOT
flow-equivalent verdict for the over-concurrent protocol and the NOT
live verdict for fall-decoupled (demonstrated in ring composition).
"""

from conftest import emit, run_once

from repro.stg import PROTOCOL_LADDER, ladder_report

PAPER_STATES = {
    "fully_decoupled": 10,
    "desync_model": 8,
    "semi_decoupled": 6,
    "simple": 5,
    "non_overlapping": 4,
}


def test_fig_2_4_protocol_ladder(benchmark):
    rows = run_once(benchmark, ladder_report)

    lines = ["Figure 2.4 -- protocol ordering by allowed concurrency"]
    lines.append(
        f"{'protocol':18s} {'states':>6s} {'paper':>6s} "
        f"{'flow-equiv':>10s} {'ring(4)':>12s} {'usable':>7s}"
    )
    for row in rows:
        paper = PAPER_STATES.get(row["protocol"])
        lines.append(
            f"{row['protocol']:18s} {row['states']:>6d} "
            f"{paper if paper is not None else '-':>6} "
            f"{str(row['flow_equivalent']):>10s} {row['ring4']:>12s} "
            f"{str(row['usable']):>7s}"
        )
    emit("fig_2_4", "\n".join(lines))

    by_name = {row["protocol"]: row for row in rows}
    # the published state counts reproduce exactly
    for name, states in PAPER_STATES.items():
        assert by_name[name]["states"] == states, name
    # classification: middle band live + flow-equivalent
    for name in PAPER_STATES:
        assert by_name[name]["usable"], name
    # extremes fail exactly as the figure says
    assert not by_name["overlapping"]["flow_equivalent"]
    assert by_name["overlapping"]["violation"] == "overwrite"
    assert by_name["fall_decoupled"]["ring4"] != "live"
    # concurrency strictly decreases down the good band
    good = [by_name[n]["states"] for n in PAPER_STATES]
    assert good == sorted(good, reverse=True)
