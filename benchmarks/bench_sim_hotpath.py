"""Simulator hot-path benchmark: compiled vs reference kernel.

Runs the DLX flow-equivalence workload (the paper's section 2.1
property on the reduced DLX core) under both simulator kernels and
measures the *event-loop* time -- cumulative wall time inside
``Simulator.run_until`` -- for the synchronous and the desynchronized
phase.  Produces ``BENCH_sim.json`` with the loop times and the
reference/compiled speedup ratios.

A second section measures *Monte-Carlo throughput*: 64 sampled chips
simulated one at a time on the compiled event kernel versus a single
64-lane pass on the bit-parallel :class:`BatchSimulator`.  Every lane's
captured sequences must be bit-identical to the matching solo run (the
lane-parity oracle), and the batch path must deliver at least 8x the
per-chip chips/sec -- both are hard failures, not warnings.

Correctness is asserted, not assumed: both event kernels must produce
identical capture sequences, toggle counts and event counts, and the
flow-equivalence verdict (every flip-flop's data sequence equals its
slave latch's) must hold under both.

Speedup *ratios* are the stable metric: absolute wall times vary with
machine load, but all kernels see the same machine, so the ratios
survive CI-runner noise.  The regression check therefore compares
ratios, never seconds.

Run directly (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_sim_hotpath.py [OUT_DIR]
        [--check BASELINE_JSON] [--history FILE] [--repeats N]

``--check`` gates the fresh combined speedup and the lane-batch
MC-throughput ratio through :func:`repro.obs.bench.check_regression`
against a committed baseline ``BENCH_sim.json`` (>25% drop fails;
with enough ``--history`` points the median/MAD statistical band
takes over).  ``--history`` appends the stamped result to the
append-only store after the gate.
"""

import argparse
import json
import os
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.designs import DlxMemories, assemble, dlx_core  # noqa: E402
from repro.designs.dlx_env import dlx_respond  # noqa: E402
from repro.desync import Drdesync  # noqa: E402
from repro.liberty import core9_hs  # noqa: E402
from repro.sim.flowequiv import (  # noqa: E402
    FlowEquivalenceReport,
    _compare_sequences,
)
from repro.sim.batch import (  # noqa: E402
    BatchSimulator,
    assert_lane_parity,
)
from repro.sim.reactive import ReactiveEnvironment  # noqa: E402
from repro.sim.testbench import SyncTestbench, initialize_registers  # noqa: E402
import repro.sim.simulator as simulator_mod  # noqa: E402
from repro.obs import bench as obs_bench  # noqa: E402
from repro.variability import VariabilityModel  # noqa: E402

N = ("nop",)
PROGRAM = assemble([
    ("addi", 1, 0, 5), ("addi", 2, 0, 7), N, N,
    ("add", 3, 1, 2), ("sub", 4, 2, 1), N, N,
    ("sw", 3, 0, 0), ("xor", 5, 3, 4), N, N,
    ("lw", 6, 0, 0), ("slt", 7, 4, 3), N, N,
])
CYCLES = 40
SYNC_PERIOD = 12.0
REGRESSION_TOLERANCE = 0.25  # fail when speedup drops >25% vs baseline
MC_CHIPS = 64  # one Monte-Carlo batch: chip j rides bit lane j
MC_MIN_SPEEDUP = 8.0  # acceptance floor for lane-batch vs per-chip


class _LoopTimer:
    """Accumulates wall time spent inside ``Simulator.run_until``."""

    def __init__(self):
        self.seconds = 0.0
        self.calls = 0
        self._original = simulator_mod.Simulator.run_until

    def install(self):
        timer = self
        original = self._original

        def timed_run_until(sim, *args, **kwargs):
            start = time.perf_counter()
            try:
                return original(sim, *args, **kwargs)
            finally:
                timer.seconds += time.perf_counter() - start
                timer.calls += 1

        simulator_mod.Simulator.run_until = timed_run_until
        return self

    def uninstall(self):
        simulator_mod.Simulator.run_until = self._original

    def reset(self):
        self.seconds = 0.0
        self.calls = 0


def _respond(sim):
    return dlx_respond(DlxMemories(PROGRAM), width=16)


def _run_sync(golden, library, kernel, timer):
    sim = simulator_mod.Simulator(golden, library, kernel=kernel)
    respond = _respond(sim)
    bits = golden.port_bits()

    def stimulus(cycle):
        return respond(cycle, {b: sim.net_values.get(b) for b in bits})

    initialize_registers(sim, 0)
    timer.reset()
    SyncTestbench(sim, clock="clk", period=SYNC_PERIOD).run_cycles(
        CYCLES, stimulus
    )
    return sim, timer.seconds, timer.calls


def _run_desync(result, library, kernel, timer):
    sim = simulator_mod.Simulator(result.module, library, kernel=kernel)
    env = ReactiveEnvironment.attach(sim, result, _respond(sim))
    timer.reset()
    env.reset(0)
    env.run_items(CYCLES)
    return sim, timer.seconds, timer.calls


def _mc_stimulus_factory(sim, bits):
    """Reactive DLX memory responder, shared by solo and batch runs."""
    respond = _respond(sim)

    def stimulus(cycle):
        return respond(cycle, {b: sim.net_values.get(b) for b in bits})

    return stimulus


def run_mc_throughput(golden, library):
    """Per-chip event kernel vs one 64-lane batch pass, parity-checked.

    Each sampled chip gets a ``derate_map`` from its inter-die and
    per-instance factors for the solo runs -- with an adequate period
    the derates change timing, never function, which is exactly what
    lane parity demonstrates: 64 chips, one batch pass, bit-identical
    captures everywhere.
    """
    chips = VariabilityModel().sample_chips(
        MC_CHIPS, seed=2006, instances=sorted(golden.instances)
    )
    bits = golden.port_bits()
    period = SYNC_PERIOD * 2.0  # headroom so derated chips still settle

    solo_start = time.perf_counter()
    solo_captures = []
    for chip in chips:
        derate_map = {
            name: chip.inter_die * factor
            for name, factor in chip.instance_factors.items()
        }
        sim = simulator_mod.Simulator(
            golden, library, derate_map=derate_map, kernel="compiled"
        )
        initialize_registers(sim, 0)
        SyncTestbench(sim, clock="clk", period=period).run_cycles(
            CYCLES, _mc_stimulus_factory(sim, bits)
        )
        solo_captures.append(sim.capture_sequences())
    solo_s = time.perf_counter() - solo_start

    # the batch pass is short enough for scheduler noise to dominate a
    # single measurement: take the best of a few repeats (parity is
    # checked on every one -- determinism is part of the contract)
    batch_s = None
    for _ in range(3):
        batch_start = time.perf_counter()
        batch = BatchSimulator(golden, library, lanes=MC_CHIPS)
        initialize_registers(batch, 0)
        SyncTestbench(batch, clock="clk").run_cycles(
            CYCLES, _mc_stimulus_factory(batch, bits)
        )
        elapsed = time.perf_counter() - batch_start
        if batch_s is None or elapsed < batch_s:
            batch_s = elapsed
        for lane in range(MC_CHIPS):
            assert_lane_parity(batch, lane, solo_captures[lane])

    speedup = solo_s / max(batch_s, 1e-12)
    if speedup < MC_MIN_SPEEDUP:
        raise SystemExit(
            f"MC throughput below acceptance floor: lane batch only "
            f"{speedup:.1f}x faster than per-chip (need >= "
            f"{MC_MIN_SPEEDUP:.0f}x)"
        )
    return {
        "chips": MC_CHIPS,
        "lanes": MC_CHIPS,
        "cycles": CYCLES,
        "solo_s": round(solo_s, 6),
        "batch_s": round(batch_s, 6),
        "solo_chips_per_s": round(MC_CHIPS / max(solo_s, 1e-12), 2),
        "batch_chips_per_s": round(MC_CHIPS / max(batch_s, 1e-12), 2),
        "speedup": round(speedup, 3),
        "lane_parity": True,
        "batch_cell_evals": batch.cell_evals,
    }


def _signature(sim):
    """Everything the two kernels must agree on."""
    return (
        [(e.instance, e.value) for e in sim.captures],
        dict(sim.toggle_counts),
        sim.event_count,
    )


def run_bench(repeats=3):
    library = core9_hs()
    module = dlx_core(library, registers=8, multiplier=False, width=16)
    golden = module.clone()
    result = Drdesync(library).run(module)

    timer = _LoopTimer().install()
    phases = {}
    signatures = {}
    sims = {}
    try:
        for phase, runner, target in (
            ("sync", _run_sync, golden),
            ("desync", _run_desync, result),
        ):
            phases[phase] = {}
            for kernel in ("reference", "compiled"):
                best = None
                for _ in range(repeats):
                    sim, seconds, calls = runner(
                        target, library, kernel, timer
                    )
                    signature = _signature(sim)
                    key = (phase, kernel)
                    if key in signatures and signatures[key] != signature:
                        raise SystemExit(
                            f"{phase}/{kernel}: non-deterministic repeat"
                        )
                    signatures[key] = signature
                    sims[key] = sim
                    if best is None or seconds < best:
                        best = seconds
                phases[phase][kernel] = {
                    "loop_s": round(best, 6),
                    "run_until_calls": calls,
                    "events": sim.event_count,
                    "evaluations": sim.evaluation_count,
                    "captures": len(sim.captures),
                }
    finally:
        timer.uninstall()

    # -- kernel parity: the optimized loop must be observationally
    #    identical to the reference loop
    for phase in ("sync", "desync"):
        if signatures[(phase, "reference")] != signatures[(phase, "compiled")]:
            raise SystemExit(
                f"{phase}: compiled kernel diverges from reference "
                "(captures/toggles/events differ)"
            )

    # -- flow equivalence must hold under both kernels
    verdicts = {}
    for kernel in ("reference", "compiled"):
        report = FlowEquivalenceReport(cycles=CYCLES)
        _compare_sequences(
            report,
            sims[("sync", kernel)].capture_sequences(),
            sims[("desync", kernel)].capture_sequences(),
            sims[("desync", kernel)],
        )
        if not report.equivalent:
            raise SystemExit(
                f"flow equivalence broken under {kernel} kernel: "
                f"{report.mismatches[:3]}"
            )
        verdicts[kernel] = {
            "equivalent": report.equivalent,
            "compared": report.compared,
        }

    mc = run_mc_throughput(golden, library)

    ref_total = sum(phases[p]["reference"]["loop_s"] for p in phases)
    cmp_total = sum(phases[p]["compiled"]["loop_s"] for p in phases)
    bench = {
        "bench": "sim_hotpath",
        "design": "dlx_small (8 regs, 16-bit, no multiplier)",
        "workload": f"{CYCLES}-cycle flow-equivalence run",
        "repeats": repeats,
        "phases": phases,
        "speedup": {
            "sync": round(
                phases["sync"]["reference"]["loop_s"]
                / max(phases["sync"]["compiled"]["loop_s"], 1e-12),
                3,
            ),
            "desync": round(
                phases["desync"]["reference"]["loop_s"]
                / max(phases["desync"]["compiled"]["loop_s"], 1e-12),
                3,
            ),
            "combined": round(ref_total / max(cmp_total, 1e-12), 3),
        },
        "flow_equivalence": verdicts,
        "identical_captures": True,
        "mc_throughput": mc,
    }
    obs_bench.stamp(
        bench,
        "sim_hotpath",
        {
            "combined_speedup": bench["speedup"]["combined"],
            "mc_speedup": mc["speedup"],
        },
        cwd=ROOT,
    )
    return bench


def _baseline_metrics(baseline):
    """Gateable metrics from a baseline, new schema or legacy layout."""
    found = obs_bench.baseline_metrics(baseline)
    if found:
        return found
    found = {"combined_speedup": baseline["speedup"]["combined"]}
    if baseline.get("mc_throughput"):
        found["mc_speedup"] = baseline["mc_throughput"]["speedup"]
    return found


def check_regression(bench, baseline_path, history_path=None):
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    history = (
        obs_bench.load_history(history_path, "sim_hotpath")
        if history_path
        else None
    )
    report = obs_bench.check_regression(
        bench["metrics"],
        _baseline_metrics(baseline),
        name="sim_hotpath",
        tolerance=REGRESSION_TOLERANCE,
        floors={"mc_speedup": MC_MIN_SPEEDUP},
        history=history,
    )
    print(report.render())
    return report.exit_code()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "out_dir",
        nargs="?",
        default=os.path.join(os.path.dirname(__file__), "results"),
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE_JSON",
        help="fail when combined speedup regresses >25%% vs this baseline",
    )
    parser.add_argument(
        "--history",
        metavar="FILE",
        help="append-only history store: consulted for the statistical "
        "gate, then appended to after the run",
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    bench = run_bench(repeats=args.repeats)

    os.makedirs(args.out_dir, exist_ok=True)
    out_file = os.path.join(args.out_dir, "BENCH_sim.json")
    with open(out_file, "w") as handle:
        json.dump(bench, handle, indent=2, sort_keys=True)
        handle.write("\n")

    speedup = bench["speedup"]
    print(
        f"sim hot path: sync {speedup['sync']:.2f}x, "
        f"desync {speedup['desync']:.2f}x, "
        f"combined {speedup['combined']:.2f}x "
        "(reference/compiled event-loop time, identical captures)"
    )
    mc = bench["mc_throughput"]
    print(
        f"MC throughput: {mc['batch_chips_per_s']:.0f} chips/s lane-batched "
        f"vs {mc['solo_chips_per_s']:.0f} chips/s per-chip = "
        f"{mc['speedup']:.1f}x at {mc['lanes']} lanes (lane parity held)"
    )
    print(f"wrote {out_file}")

    status = 0
    if args.check:
        status = check_regression(bench, args.check, args.history)
    if args.history:
        obs_bench.append_history(bench, args.history)
        print(f"recorded sim_hotpath -> {args.history}")
    return status


if __name__ == "__main__":
    sys.exit(main())
