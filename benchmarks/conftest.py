"""Shared fixtures for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper's
evaluation.  The pytest-benchmark fixture times the headline
computation once (``pedantic(rounds=1)``) -- these are experiments, not
micro-benchmarks -- and each bench *prints* the reproduced rows/series
(run with ``pytest benchmarks/ --benchmark-only -s`` to see them) and
appends them to ``benchmarks/results/`` for EXPERIMENTS.md.
"""

import os

import pytest

from repro.liberty import core9_hs, core9_ll

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> None:
    """Print a reproduced table and persist it under benchmarks/results."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")


@pytest.fixture(scope="session")
def hs_library():
    return core9_hs()


@pytest.fixture(scope="session")
def ll_library():
    return core9_ll()


def run_once(benchmark, fn):
    """Time ``fn`` exactly once through pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
