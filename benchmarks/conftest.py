"""Shared fixtures for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper's
evaluation.  The pytest-benchmark fixture times the headline
computation once (``pedantic(rounds=1)``) -- these are experiments, not
micro-benchmarks -- and each bench *prints* the reproduced rows/series
(run with ``pytest benchmarks/ --benchmark-only -s`` to see them) and
appends them to ``benchmarks/results/`` for EXPERIMENTS.md.

The harness runs on the :mod:`repro.engine` flow engine: design
generation and the flow stages cache content-addressed under the
repo-level ``.repro_cache/`` directory (override with the
``REPRO_CACHE_DIR`` environment variable), so a second benchmark run
resumes from cached artifacts instead of regenerating the netlists and
re-characterising the delay ladders.
"""

import json
import os

import pytest

from repro.designs import dlx_core
from repro.obs import bench as obs_bench
from repro.engine import (
    ArtifactCache,
    FlowEngine,
    FlowGraph,
    RunJournal,
    generation_stage,
    library_fingerprint,
)
from repro.liberty import core9_hs, core9_ll

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
CACHE_DIR = os.environ.get(
    "REPRO_CACHE_DIR",
    os.path.join(os.path.dirname(__file__), os.pardir, ".repro_cache"),
)
#: thread count for parallel flow branches (1 = deterministic serial)
ENGINE_JOBS = int(os.environ.get("REPRO_JOBS", "2"))


#: the append-only history store the ``repro bench`` verbs default to
HISTORY_PATH = os.path.join(RESULTS_DIR, "history.jsonl")


def emit(name: str, text: str) -> None:
    """Print a reproduced table and persist it under benchmarks/results."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")


def stamp_result(payload: dict, name: str, metrics: dict) -> dict:
    """Upgrade a benchmark payload to the unified ``repro-bench/v1``
    schema in place: machine/python/CPU metadata, git revision and a
    UTC timestamp next to the gated ``metrics`` block."""
    return obs_bench.stamp(
        payload, name, metrics, cwd=os.path.dirname(__file__)
    )


def emit_json(name: str, payload: dict, record: bool = False) -> str:
    """Write a stamped benchmark payload under ``benchmarks/results``.

    ``record=True`` (or ``REPRO_BENCH_RECORD=1``) also appends the
    result to the shared append-only history store so the statistical
    regression detector accumulates points.
    """
    if "metrics" not in payload:
        raise ValueError(f"{name}: stamp_result() the payload first")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if record or os.environ.get("REPRO_BENCH_RECORD") == "1":
        obs_bench.append_history(payload, HISTORY_PATH)
    return path


@pytest.fixture(scope="session")
def hs_library():
    return core9_hs()


@pytest.fixture(scope="session")
def ll_library():
    return core9_ll()


@pytest.fixture(scope="session")
def engine_cache():
    """The persistent artifact cache every benchmark engine shares."""
    return ArtifactCache(CACHE_DIR)


@pytest.fixture
def make_engine(engine_cache):
    """Factory for per-benchmark engines sharing the session cache."""

    def make(journal_path=None, jobs=ENGINE_JOBS, cache=True):
        journal = None
        if journal_path is not None:
            os.makedirs(RESULTS_DIR, exist_ok=True)
            journal = RunJournal(journal_path)
        return FlowEngine(
            cache=engine_cache if cache else None,
            journal=journal,
            jobs=jobs,
        )

    return make


@pytest.fixture
def dlx_factory(engine_cache, hs_library):
    """Build a DLX netlist through the engine cache.

    The shared "generate DLX on the HS library" setup every benchmark
    used to repeat now runs as one cached generation stage: the first
    call per parameter set builds the netlist, later calls (including
    later pytest invocations) load the cached artifact.  Each call
    returns an independent module object.
    """

    def make(engine=None, journal=None, **kwargs):
        params = {
            "generator": "dlx_core",
            "library": library_fingerprint(hs_library),
            **kwargs,
        }
        graph = FlowGraph("generate-dlx")
        graph.add(
            generation_stage(
                "generate.dlx",
                lambda: dlx_core(hs_library, **kwargs),
                params,
            )
        )
        engine = engine or FlowEngine(cache=engine_cache, journal=journal)
        result = engine.run(graph, label="generate:dlx")
        result.raise_first_failure()
        # cache hits hand out a private unpickled copy, and the cold
        # path snapshots the artifact before returning it, so callers
        # may freely mutate the module
        return result.artifacts["module"]

    return make


def run_once(benchmark, fn):
    """Time ``fn`` exactly once through pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
