"""Figure 5.3: operational period vs delay-element selection.

The desynchronized DLX carries 8-input multiplexed delay elements; the
paper sweeps the selection from 7 (longest) to 0 (shortest) at both
corner cases and observes (a) the period shrinking with the selection,
(b) setup failure ("too short") below a threshold selection, and --
the headline -- (c) that the failing point is the *same selection at
both corners*: the delay elements are built from the same gates as the
logic, so both scale together under PVT.

We regenerate the sweep on the reduced DLX:

- the effective period is *measured* from full handshake simulation at
  each selection and corner;
- the "too short" verdict uses the same criterion the paper's STA
  applies: the selected delay-element length no longer covers some
  region's combinational critical path.  (Our shipped controller adds
  announce-side slack beyond the delay element, so the gate-level
  simulation stays data-correct somewhat below this threshold -- a
  conservative deviation recorded in EXPERIMENTS.md; the simulated
  flow-equivalence verdict is reported alongside.)
"""

from conftest import emit, run_once

from repro.desync import DesyncOptions, Drdesync, mux_selection_delay
from repro.designs import DlxMemories, assemble, dlx_core
from repro.designs.dlx_env import dlx_respond
from repro.perf import measure_effective_period
from repro.sim import Simulator
from repro.sim.flowequiv import check_flow_equivalence_reactive
from repro.sim.reactive import ReactiveEnvironment

N = ("nop",)
# carry-heavy workload: the adds ripple through the full carry chain,
# sensitising the region critical paths the delay elements must cover
PROGRAM = assemble([
    ("addi", 1, 0, 0x7FFF), ("addi", 2, 0, 1), N, N,
    ("add", 3, 1, 2), ("add", 4, 1, 1), N, N,
    ("sub", 5, 2, 1), ("slt", 6, 1, 2), N, N,
    ("add", 7, 3, 1), N, N, N,
])


def _selection_inputs(module, result, selection: int):
    """dsel port-bit values that pick ``selection`` in every region."""
    values = {}
    for region, element in result.network.delay_elements.items():
        if not element.select_nets:
            continue
        taps = len(element.taps)
        sel = min(selection, taps - 1)
        for bit_index, bit in enumerate(element.select_nets):
            values[bit] = (sel >> bit_index) & 1
    return values


def _measure(library, result, selection, corner):
    simulator = Simulator(result.module, library, corner=corner)
    for bit, value in _selection_inputs(result.module, result, selection).items():
        simulator.set_input(bit, value)
    env = ReactiveEnvironment.attach(
        simulator, result, dlx_respond(DlxMemories(PROGRAM), width=16)
    )
    env.reset(0)
    env.run_items(12)
    probe = next(n for n in simulator._models if n.endswith("_ls"))
    return measure_effective_period(simulator, probe)


def _setup_ok(library, result, selection, corner) -> bool:
    """STA-style check: every region's selected delay covers its cloud.

    Both the cloud delay and the delay element scale with the corner
    derate, so the verdict is corner-independent by construction -- the
    paper's observation that best and worst case fail at the same point.
    """
    derate = library.corner(corner).derate
    ladder_derate = library.corner(result.ladder.corner).derate
    for region, element in result.network.delay_elements.items():
        cloud = result.network.region_delays.get(region, 0.0)
        if cloud <= 0:
            continue
        taps = len(element.taps) or 1
        selected = mux_selection_delay(
            result.ladder, element.length, taps, min(selection, taps - 1)
        )
        if selected * derate / ladder_derate < cloud * derate / ladder_derate:
            return False
    return True


def _flow_equivalent(library, golden, result, selection):
    sel_inputs = _selection_inputs(result.module, result, selection)

    def respond_factory(simulator):
        for bit, value in sel_inputs.items():
            simulator.set_input(bit, value)
        return dlx_respond(DlxMemories(PROGRAM), width=16)

    try:
        report = check_flow_equivalence_reactive(
            golden, result, library, cycles=8,
            respond_factory=respond_factory,
        )
    except Exception:
        return False
    return report.equivalent


def test_fig_5_3_period_vs_delay_selection(benchmark, hs_library):
    def run():
        module = dlx_core(hs_library, registers=8, multiplier=False, width=16)
        golden = module.clone()
        tool = Drdesync(hs_library)
        result = tool.run(module, DesyncOptions(delay_mux_taps=8))
        rows = []
        for selection in range(7, -1, -1):
            rows.append(
                {
                    "selection": selection,
                    "worst_period": _measure(
                        hs_library, result, selection, "worst"
                    ),
                    "best_period": _measure(
                        hs_library, result, selection, "best"
                    ),
                    "setup_ok_worst": _setup_ok(
                        hs_library, result, selection, "worst"
                    ),
                    "setup_ok_best": _setup_ok(
                        hs_library, result, selection, "best"
                    ),
                    "sim_equivalent": _flow_equivalent(
                        hs_library, golden.clone(), result, selection
                    ),
                }
            )
        return rows

    rows = run_once(benchmark, run)

    lines = [
        "Figure 5.3 -- DDLX operational period vs delay selection",
        f"{'sel':>3s} {'worst (ns)':>11s} {'best (ns)':>10s} "
        f"{'setup@worst':>12s} {'setup@best':>11s} {'sim FE':>7s}",
    ]
    for row in rows:
        lines.append(
            f"{row['selection']:>3d} {row['worst_period']:>11.3f} "
            f"{row['best_period']:>10.3f} "
            f"{('ok' if row['setup_ok_worst'] else 'TOO SHORT'):>12s} "
            f"{('ok' if row['setup_ok_best'] else 'TOO SHORT'):>11s} "
            f"{str(row['sim_equivalent']):>7s}"
        )
    failing = [r["selection"] for r in rows if not r["setup_ok_worst"]]
    lines.append(
        "first too-short selection (setup criterion): "
        + (str(max(failing)) if failing else "none")
    )
    lines.append(
        "paper: the delay elements fail at the SAME selection for both "
        "corners (their selection 2) -- they track the logic under PVT"
    )
    emit("fig_5_3", "\n".join(lines))

    # period shrinks with the selection; best < worst everywhere
    assert rows[0]["worst_period"] > rows[-1]["worst_period"]
    assert rows[0]["best_period"] > rows[-1]["best_period"]
    for row in rows:
        assert row["best_period"] < row["worst_period"]
    # setup verdicts: the full chain works, the shortest does not, and
    # -- the paper's key point -- best and worst agree at EVERY selection
    assert rows[0]["setup_ok_worst"] and rows[0]["setup_ok_best"]
    assert not rows[-1]["setup_ok_worst"]
    for row in rows:
        assert row["setup_ok_worst"] == row["setup_ok_best"]
    # the simulated circuit is flow-equivalent wherever setup holds
    for row in rows:
        if row["setup_ok_worst"]:
            assert row["sim_equivalent"]
