"""Chapter 6 future work, implemented and measured.

Three extensions the paper proposes and this reproduction carries out:

1. **SSTA verification of delay-element matching** -- per region, the
   statistical probability that the element still covers the cloud,
   with and without the on-die correlation the technique relies on;
2. **ECO post-layout calibration** -- re-measure after parasitic
   extraction and splice extra AND levels where the margin eroded;
3. **floorplan constraints** -- pull the delay elements next to the
   logic they model and measure the proximity gain.
"""

from conftest import emit, run_once

from repro.desync import Drdesync, eco_calibrate
from repro.designs import dlx_core
from repro.physical import (
    apply_floorplan_constraints,
    delay_element_proximity,
    place,
    run_backend,
)
from repro.sta import delay_element_matching


def test_future_work_extensions(benchmark, hs_library):
    def run():
        module = dlx_core(hs_library, registers=8, multiplier=False, width=16)
        result = Drdesync(hs_library).run(module)

        matching = delay_element_matching(result, hs_library)

        backend = run_backend(
            module, hs_library, sdc=result.sdc, target_utilization=0.90
        )
        eco = eco_calibrate(result, hs_library)

        placement = place(module, hs_library, target_utilization=0.90)
        before = delay_element_proximity(module, placement, result.network)
        apply_floorplan_constraints(module, placement, result.network)
        after = delay_element_proximity(module, placement, result.network)
        return matching, eco, before, after

    matching, eco, before, after = run_once(benchmark, run)

    lines = ["Chapter 6 future work, implemented", ""]
    lines.append("1) SSTA delay-element matching yield per region")
    lines.append(
        f"{'region':>8s} {'cloud (ns)':>11s} {'element (ns)':>13s} "
        f"{'yield on-die':>13s} {'yield uncorr':>13s}"
    )
    for row in matching:
        lines.append(
            f"{row.region:>8s} {row.cloud.mean:>11.3f} "
            f"{row.element.mean:>13.3f} {row.yield_correlated:>13.5f} "
            f"{row.yield_uncorrelated:>13.5f}"
        )
    lines.append("")
    lines.append("2) " + eco.to_text())
    lines.append("")
    lines.append("3) delay-element proximity to matched logic (um)")
    lines.append(
        f"   before floorplan constraints: {before.mean_distance:8.2f}"
    )
    lines.append(
        f"   after floorplan constraints : {after.mean_distance:8.2f}"
    )
    emit("future_work", "\n".join(lines))

    assert all(row.yield_correlated > 0.999 for row in matching)
    assert any(
        row.yield_uncorrelated < row.yield_correlated for row in matching
    )
    assert after.mean_distance <= before.mean_distance
