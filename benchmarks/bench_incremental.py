"""Incremental re-flow benchmark: ECO edit vs from-scratch pipeline.

Measures the tentpole claim end to end on the full DLX core: a
single-cell drive swap pushed through ``repro.flow.incremental``
(mutation stamps -> dirty sets -> cached region partition -> DDG patch
-> warm compiled-STA delay re-selection -> spliced control network)
against re-running the whole desynchronization flow on the edited
netlist.

Bit-identity is asserted before any timing is reported: the
incremental result's Verilog and SDC must equal the from-scratch
(mode="full") flow's output exactly, every repeat.

The regression metric is the speedup *ratio* (cold seconds /
incremental seconds) -- both paths run on the same machine, so the
ratio survives CI-runner noise.  The ratio is also gated absolutely:
below ``MIN_SPEEDUP`` (20x) the benchmark fails outright.

Run directly (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_incremental.py [OUT_DIR]
        [--check BASELINE_JSON] [--history FILE] [--repeats N]

``--check`` gates the fresh speedup through
:func:`repro.obs.bench.check_regression` against a committed baseline
``BENCH_incr.json`` (>25% drop fails; with enough ``--history`` points
the median/MAD statistical band takes over).  ``--history`` appends
the stamped result to the append-only store after the gate.
"""

import argparse
import json
import os
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.designs import dlx_core  # noqa: E402
from repro.desync import DesyncOptions, desynchronize  # noqa: E402
from repro.flow.incremental import (  # noqa: E402
    IncrementalSession,
    NetlistEdit,
    apply_edit,
)
from repro.liberty import core9_hs  # noqa: E402
from repro.netlist.verilog import write_module  # noqa: E402
from repro.obs import bench as obs_bench  # noqa: E402

MIN_SPEEDUP = 20.0  # hard floor from the acceptance criteria
REGRESSION_TOLERANCE = 0.25  # fail when speedup drops >25% vs baseline

SWAP_FROM = "AND2X1"
SWAP_TO = "AND2X4"


def _signature(result):
    return write_module(result.module), result.export_sdc()


def _pick_target(module):
    names = sorted(
        name
        for name, inst in module.instances.items()
        if inst.cell == SWAP_FROM
    )
    if not names:
        raise SystemExit(f"no {SWAP_FROM} instance in the DLX core")
    return names[0]


def run_bench(repeats=3):
    library = core9_hs()
    options = DesyncOptions()
    module = dlx_core(library)
    target = _pick_target(module)
    edit_fwd = NetlistEdit("swap_cell", instance=target, cell=SWAP_TO)
    edit_back = NetlistEdit("swap_cell", instance=target, cell=SWAP_FROM)

    # -- cold: the whole pipeline from scratch on the edited input.
    # The first repeat doubles as the mode="full" parity oracle.
    cold_times = []
    oracle_sig = None
    for _ in range(repeats):
        edited = module.clone()
        apply_edit(edited, library, edit_fwd)
        start = time.perf_counter()
        full = desynchronize(edited, library, options)
        cold_times.append(time.perf_counter() - start)
        sig = _signature(full)
        if oracle_sig is None:
            oracle_sig = sig
        elif sig != oracle_sig:
            raise SystemExit("cold flow is non-deterministic across repeats")

    # -- incremental: one session, then the same swap through the
    # change-tracking layer (swap back between repeats, also timed --
    # both directions are single-cell ECO applies)
    session = IncrementalSession(library, options)
    start = time.perf_counter()
    session.start(module.clone())
    session_start_s = time.perf_counter() - start

    incr_times = []
    paths = set()
    for _ in range(repeats):
        start = time.perf_counter()
        outcome = session.apply(edit_fwd)
        incr_times.append(time.perf_counter() - start)
        paths.add(outcome.path)
        if _signature(outcome.result) != oracle_sig:
            raise SystemExit(
                "incremental result diverges from the from-scratch flow"
            )
        start = time.perf_counter()
        session.apply(edit_back)
        incr_times.append(time.perf_counter() - start)

    # one verified apply for the record (scoped re-simulation included)
    start = time.perf_counter()
    verified = session.apply(edit_fwd, verify="affected")
    verify_s = time.perf_counter() - start
    if _signature(verified.result) != oracle_sig:
        raise SystemExit("verified incremental apply diverges from oracle")
    if verified.report is None or verified.report.get("error"):
        raise SystemExit(
            f"scoped verification failed: {verified.report!r}"
        )

    cold_s = min(cold_times)
    incr_s = min(incr_times)
    speedup = cold_s / max(incr_s, 1e-12)
    if speedup < MIN_SPEEDUP:
        raise SystemExit(
            f"FAIL: incremental re-flow only {speedup:.1f}x faster than "
            f"cold (floor {MIN_SPEEDUP:.0f}x)"
        )

    bench = {
        "bench": "incremental_reflow",
        "design": "dlx (full core)",
        "edit": f"swap {target} {SWAP_FROM}->{SWAP_TO}",
        "repeats": repeats,
        "paths": sorted(paths),
        "cold_flow_s": round(cold_s, 6),
        "session_start_s": round(session_start_s, 6),
        "incremental_apply_s": round(incr_s, 6),
        "verified_apply_s": round(verify_s, 6),
        "verified_regions": verified.verified_regions,
        "speedup": round(speedup, 3),
        "min_speedup": MIN_SPEEDUP,
        "identical_results": True,
    }
    obs_bench.stamp(
        bench,
        "incremental_reflow",
        {"speedup": bench["speedup"]},
        cwd=ROOT,
    )
    return bench


def check_regression(bench, baseline_path, history_path=None):
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    base = obs_bench.baseline_metrics(baseline) or {
        "speedup": baseline["speedup"]
    }
    history = (
        obs_bench.load_history(history_path, "incremental_reflow")
        if history_path
        else None
    )
    report = obs_bench.check_regression(
        bench["metrics"],
        base,
        name="incremental_reflow",
        tolerance=REGRESSION_TOLERANCE,
        floors={"speedup": MIN_SPEEDUP},
        history=history,
    )
    print(report.render())
    return report.exit_code()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "out_dir",
        nargs="?",
        default=os.path.join(os.path.dirname(__file__), "results"),
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE_JSON",
        help="fail when the speedup regresses >25%% vs this baseline",
    )
    parser.add_argument(
        "--history",
        metavar="FILE",
        help="append-only history store: consulted for the statistical "
        "gate, then appended to after the run",
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    bench = run_bench(repeats=args.repeats)

    os.makedirs(args.out_dir, exist_ok=True)
    out_file = os.path.join(args.out_dir, "BENCH_incr.json")
    with open(out_file, "w") as handle:
        json.dump(bench, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(
        "incremental re-flow: "
        f"cold {bench['cold_flow_s'] * 1000:.0f} ms, "
        f"apply {bench['incremental_apply_s'] * 1000:.1f} ms, "
        f"speedup {bench['speedup']:.1f}x "
        f"(floor {MIN_SPEEDUP:.0f}x, bit-identical to mode=\"full\"); "
        f"verified apply {bench['verified_apply_s'] * 1000:.0f} ms "
        f"over {len(bench['verified_regions'])} region(s)"
    )
    print(f"wrote {out_file}")

    status = 0
    if args.check:
        status = check_regression(bench, args.check, args.history)
    if args.history:
        obs_bench.append_history(bench, args.history)
        print(f"recorded incremental_reflow -> {args.history}")
    return status


if __name__ == "__main__":
    sys.exit(main())
