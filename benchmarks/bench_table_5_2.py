"""Table 5.2: area results for the synchronous and desynchronized ARM.

The ARM966E-S was an existing scan design whose internals could not be
grouped, so the paper converted it as a *single region* using the
Low-Leakage library and reports area only.  The scan flip-flops make
the sequential overhead much larger than the DLX's (+40.7% vs +17.7%)
because every scan mux is re-created as front logic before the master
latch and the paper books that area as sequential overhead.

The power companion test runs both implementations through the paper's
activity-based power path on a matched post-warmup window: the
synchronous core through the windowed activity recorder, the
desynchronized one through a VCD waveform (the literal VCD -> SAIF ->
power-report pipeline of section 5.2.3).
"""

from conftest import emit, run_once

from repro.desync import DesyncOptions, Drdesync
from repro.designs import arm9_core
from repro.flow import (
    compare_implementations,
    implement_desynchronized,
    implement_synchronous,
)
from repro.obs import VcdWriter
from repro.power import (
    activity_from_vcd,
    activity_from_window,
    estimate_power,
    WindowedActivityRecorder,
)
from repro.sim import (
    HandshakeTestbench,
    Simulator,
    SyncTestbench,
    initialize_registers,
)
from repro.sta.analysis import min_clock_period

PAPER = {
    "Post Synthesis": {
        "# nets": (34690, 45626, 31.52),
        "# cells": (31549, 45489, 44.19),
        "cell area (um2)": (578227.77, 684791.86, 18.43),
        "combinational logic (um2)": (318108.19, 318792.02, 0.21),
        "sequential logic (um2)": (260119.58, 365999.84, 40.70),
    },
    "Post Layout": {
        "core size (um2)": (792598.22, 855551.00, 7.94),
        "core utilization (%)": (79.95, 88.23, -10.36),
    },
}

#: scaled-down core so the bench completes in minutes; the structural
#: signature (scan FFs, ~45% sequential area) is preserved
TARGET_CELLS = 8000


def test_table_5_2_arm_area(benchmark, ll_library):
    def run():
        sync_module = arm9_core(ll_library, target_cells=TARGET_CELLS)
        desync_module = sync_module.clone()
        sync = implement_synchronous(
            sync_module, ll_library, target_utilization=0.80
        )
        desync = implement_desynchronized(
            desync_module,
            ll_library,
            options=DesyncOptions(grouping="single"),
            target_utilization=0.88,
        )
        return compare_implementations("ARM-class core", sync, desync)

    table = run_once(benchmark, run)

    lines = [table.to_text(), "", "paper reference (ARM966E-S, CORE9 LL):"]
    for phase, rows in PAPER.items():
        lines.append(f"-- {phase} --")
        for name, (sync_v, desync_v, ovhd) in rows.items():
            lines.append(
                f"{name:28s} {sync_v:>14.2f} {desync_v:>14.2f} {ovhd:>8.2f}"
            )
    emit("table_5_2", "\n".join(lines))

    synthesis = table.phases["Post Synthesis"]
    layout = table.phases["Post Layout"]
    seq = synthesis["sequential logic (um2)"]["overhead_pct"]
    # the scan design's sequential overhead is well above the DLX's 17.7%
    assert seq > 22, "scan substitution inflates sequential overhead"
    # the total cell-count overhead is large (paper +44%) because of the
    # per-flip-flop mux/latch explosion
    assert synthesis["# cells"]["overhead_pct"] > 20
    # core grows but far less than the cell count (paper +7.9%)
    assert 0 < layout["core size (um2)"]["overhead_pct"] < 45
    # desynchronized utilization is higher here (paper: 88.2 vs 80.0)
    assert layout["core utilization (%)"]["overhead_pct"] > 0


#: smaller core for the simulated power comparison (the area bench
#: never simulates; this one runs both implementations gate-level)
POWER_CELLS = 1500
POWER_ITEMS = 12
WARMUP_CYCLES = 2


def _arm_stimulus(din_bits):
    def stimulus(item):
        values = {
            bit: (item >> index) & 1 for index, bit in enumerate(din_bits)
        }
        values["scan_en"] = 0
        values["scan_in"] = 0
        return values

    return stimulus


def test_table_5_2_arm_power_comparison(benchmark, ll_library, tmp_path):
    """Power on a matched window: recorder (sync) vs VCD path (desync)."""

    def run():
        sync_module = arm9_core(ll_library, target_cells=POWER_CELLS)
        desync_module = sync_module.clone()
        stimulus = _arm_stimulus(sync_module.ports["din"].bit_names())

        # synchronous reference: clocked run, activity from the windowed
        # recorder with the reset/warmup cycles cut off
        period = min_clock_period(sync_module, ll_library, "worst") * 1.5 + 0.5
        sync_sim = Simulator(sync_module, ll_library)
        recorder = WindowedActivityRecorder(sync_sim)
        initialize_registers(sync_sim, 0)
        SyncTestbench(sync_sim, clock="clk", period=period).run_cycles(
            POWER_ITEMS, stimulus
        )
        sync_activity = activity_from_window(
            recorder, start_ns=WARMUP_CYCLES * period
        )
        sync_power = estimate_power(sync_module, ll_library, sync_activity)

        # desynchronized: single region like the paper's ARM, activity
        # recovered from the VCD waveform over the same warmup cut
        result = Drdesync(ll_library).run(
            desync_module, DesyncOptions(grouping="single")
        )
        desync_sim = Simulator(result.module, ll_library)
        vcd_path = str(tmp_path / "arm_power.vcd")
        writer = VcdWriter(vcd_path)
        writer.attach(desync_sim)
        bench_hs = HandshakeTestbench(
            desync_sim, result.network.env_ports, result.network.reset_net
        )
        bench_hs.apply_reset(0, initial_inputs=stimulus(0))
        bench_hs.run_items(POWER_ITEMS - 1, stimulus, first_item=1)
        writer.close()
        item_time = (desync_sim.now - 2.0) / POWER_ITEMS
        desync_activity = activity_from_vcd(
            vcd_path,
            result.module,
            ll_library,
            start_ns=2.0 + WARMUP_CYCLES * item_time,
        )
        desync_power = estimate_power(
            result.module, ll_library, desync_activity
        )
        return sync_power, desync_power, sync_activity, desync_activity

    sync_power, desync_power, sync_activity, desync_activity = run_once(
        benchmark, run
    )

    ratio = desync_power.total_mw / sync_power.total_mw
    lines = [
        "Table 5.2 companion -- simulated power on the ARM-class core "
        f"({POWER_CELLS} cells, CORE9 LL, {POWER_ITEMS} items)",
        f"{'':24s} {'sync':>10s} {'desync':>10s}",
        f"{'switching (mW)':24s} {sync_power.switching_mw:>10.4f} "
        f"{desync_power.switching_mw:>10.4f}",
        f"{'internal (mW)':24s} {sync_power.internal_mw:>10.4f} "
        f"{desync_power.internal_mw:>10.4f}",
        f"{'leakage (mW)':24s} {sync_power.leakage_mw:>10.4f} "
        f"{desync_power.leakage_mw:>10.4f}",
        f"{'total (mW)':24s} {sync_power.total_mw:>10.4f} "
        f"{desync_power.total_mw:>10.4f}",
        f"desync/sync total ratio: {ratio:.3f}",
        "sync activity from the windowed recorder; desync activity from "
        "the VCD -> activity -> power path",
    ]
    emit("table_5_2_power", "\n".join(lines))

    assert sync_power.total_mw > 0 and desync_power.total_mw > 0
    # both implementations burn the same order of magnitude
    assert 0.2 < ratio < 5.0
    # the handshake network adds cells, so leakage must go up
    assert desync_power.leakage_mw > sync_power.leakage_mw
    # the windows genuinely cut the warmup activity out
    assert sum(sync_activity.toggles.values()) > 0
    assert sum(desync_activity.toggles.values()) > 0
