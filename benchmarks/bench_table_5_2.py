"""Table 5.2: area results for the synchronous and desynchronized ARM.

The ARM966E-S was an existing scan design whose internals could not be
grouped, so the paper converted it as a *single region* using the
Low-Leakage library and reports area only.  The scan flip-flops make
the sequential overhead much larger than the DLX's (+40.7% vs +17.7%)
because every scan mux is re-created as front logic before the master
latch and the paper books that area as sequential overhead.
"""

from conftest import emit, run_once

from repro.desync import DesyncOptions
from repro.designs import arm9_core
from repro.flow import (
    compare_implementations,
    implement_desynchronized,
    implement_synchronous,
)

PAPER = {
    "Post Synthesis": {
        "# nets": (34690, 45626, 31.52),
        "# cells": (31549, 45489, 44.19),
        "cell area (um2)": (578227.77, 684791.86, 18.43),
        "combinational logic (um2)": (318108.19, 318792.02, 0.21),
        "sequential logic (um2)": (260119.58, 365999.84, 40.70),
    },
    "Post Layout": {
        "core size (um2)": (792598.22, 855551.00, 7.94),
        "core utilization (%)": (79.95, 88.23, -10.36),
    },
}

#: scaled-down core so the bench completes in minutes; the structural
#: signature (scan FFs, ~45% sequential area) is preserved
TARGET_CELLS = 8000


def test_table_5_2_arm_area(benchmark, ll_library):
    def run():
        sync_module = arm9_core(ll_library, target_cells=TARGET_CELLS)
        desync_module = sync_module.clone()
        sync = implement_synchronous(
            sync_module, ll_library, target_utilization=0.80
        )
        desync = implement_desynchronized(
            desync_module,
            ll_library,
            options=DesyncOptions(grouping="single"),
            target_utilization=0.88,
        )
        return compare_implementations("ARM-class core", sync, desync)

    table = run_once(benchmark, run)

    lines = [table.to_text(), "", "paper reference (ARM966E-S, CORE9 LL):"]
    for phase, rows in PAPER.items():
        lines.append(f"-- {phase} --")
        for name, (sync_v, desync_v, ovhd) in rows.items():
            lines.append(
                f"{name:28s} {sync_v:>14.2f} {desync_v:>14.2f} {ovhd:>8.2f}"
            )
    emit("table_5_2", "\n".join(lines))

    synthesis = table.phases["Post Synthesis"]
    layout = table.phases["Post Layout"]
    seq = synthesis["sequential logic (um2)"]["overhead_pct"]
    # the scan design's sequential overhead is well above the DLX's 17.7%
    assert seq > 22, "scan substitution inflates sequential overhead"
    # the total cell-count overhead is large (paper +44%) because of the
    # per-flip-flop mux/latch explosion
    assert synthesis["# cells"]["overhead_pct"] > 20
    # core grows but far less than the cell count (paper +7.9%)
    assert 0 < layout["core size (um2)"]["overhead_pct"] < 45
    # desynchronized utilization is higher here (paper: 88.2 vs 80.0)
    assert layout["core utilization (%)"]["overhead_pct"] > 0
