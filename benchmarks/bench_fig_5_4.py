"""Figure 5.4: real operating delay -- DDLX average case vs DLX worst case.

The synchronous chip must ship clocked at the worst corner; the
desynchronized chip's delay elements live on the same die and scale
with it, so its effective period follows each chip's actual speed.
The paper assumes a normal distribution between the corners (like
SSTA) and finds the desynchronized circuit faster than the synchronous
one on ~90% of dies (the shaded area of the figure).

Two backends reproduce the figure.  The analytic model sweeps 20000
dies through the closed-form period factors and reports the histogram
plus p50/p95 effective periods and the yield-vs-margin sweep.  The
simulation-backed mode (``run_study(backend="sim")``) additionally
runs the DLX gate-level on the bit-parallel lane simulator -- 64 chips
per pass, regions taken from the desynchronization result, each chip's
sampled ``instance_factors`` scaling its region delays against the
measured per-edge activity -- with one lane parity-checked against a
solo compiled-kernel run.
"""

from conftest import emit, run_once

from repro.desync import Drdesync
from repro.designs import DlxMemories, assemble, dlx_core
from repro.designs.dlx_env import dlx_respond
from repro.perf import effective_period_model
from repro.variability import SimBackendConfig, VariabilityModel, run_study

#: small register-file workout for the sim-backed study
_PROGRAM = assemble([
    ("addi", 1, 0, 5), ("addi", 2, 0, 7), ("nop",), ("nop",),
    ("add", 3, 1, 2), ("sub", 4, 2, 1), ("nop",), ("nop",),
])


def _sim_regions(result, golden, nominal):
    """Map desync regions back onto the synchronous module's flip-flops.

    The conversion renames every FF ``r`` into master/slave latches
    ``r_lm``/``r_ls``; stripping the suffix recovers the golden
    instance whose sampled variation factor scales that region.
    """
    regions = {}
    for name, region in result.region_map.regions.items():
        members = sorted({
            inst[:-3]
            for inst in region.instances
            if inst.endswith(("_lm", "_ls")) and inst[:-3] in golden.instances
        })
        if members:
            regions[name] = (nominal, members)
    return regions


def test_fig_5_4_variability_distribution(benchmark, hs_library):
    def run():
        module = dlx_core(hs_library, registers=8, multiplier=False, width=16)
        golden = module.clone()
        result = Drdesync(hs_library).run(module)
        # nominal (typical-die) effective period of the DDLX: midpoint
        # between the characterised corners, like the paper's assumption
        worst = effective_period_model(result, hs_library, "worst")
        best = effective_period_model(result, hs_library, "best")
        worst_derate = hs_library.corner("worst").derate
        nominal = worst.effective_period / worst_derate
        model = VariabilityModel(sigma_inter=0.12, sigma_intra=0.04)
        study = run_study(nominal, model=model, n_chips=20000, margin=0.10)

        # simulation-backed spot check: same distribution machinery,
        # but the per-die periods come from lane-batched gate-level
        # runs of the synchronous netlist with per-chip region factors
        bits = golden.port_bits()

        def stim_factory(sim):
            respond = dlx_respond(DlxMemories(_PROGRAM), width=16)

            def stimulus(cycle):
                return respond(
                    cycle, {b: sim.net_values.get(b) for b in bits}
                )

            return stimulus

        sim_config = SimBackendConfig(
            module=golden,
            library=hs_library,
            stimulus_factory=stim_factory,
            cycles=12,
            regions=_sim_regions(result, golden, nominal),
            oracle_chips=1,
        )
        sim_study = run_study(
            nominal, model=model, n_chips=128, margin=0.10,
            backend="sim", sim=sim_config, lanes=64,
        )
        return {
            "worst_period": worst.effective_period,
            "best_period": best.effective_period,
            "nominal": nominal,
            "study": study,
            "sim_study": sim_study,
        }

    data = run_once(benchmark, run)
    study = data["study"]
    sim_study = data["sim_study"]

    lines = [
        "Figure 5.4 -- real operation delay: DDLX distribution vs DLX worst",
        f"DDLX worst-case period : {data['worst_period']:8.3f} ns",
        f"DDLX best-case period  : {data['best_period']:8.3f} ns",
        f"DDLX nominal period    : {data['nominal']:8.3f} ns",
        f"DLX shipping period    : {study.sync_period:8.3f} ns (worst case)",
        f"DDLX mean period       : {study.mean_desync_period:8.3f} ns",
        "",
        "DDLX effective-period distribution (20000 Monte-Carlo dies):",
    ]
    for bucket in study.histogram(bins=14):
        bar = "#" * int(round(bucket["probability"] * 200))
        lines.append(
            f"  {bucket['low']:6.2f}-{bucket['high']:6.2f} ns "
            f"{bucket['probability']*100:5.1f}% {bar}"
        )
    lines.append("")
    lines.append(
        f"DDLX p50 period        : {study.percentile(50):8.3f} ns"
    )
    lines.append(
        f"DDLX p95 period        : {study.percentile(95):8.3f} ns"
    )
    lines.append("")
    lines.append("yield vs delay-element margin (desync beats sync clock):")
    for row in study.yield_vs_margin([0.0, 0.05, 0.10, 0.15, 0.20]):
        lines.append(
            f"  margin {row['margin']*100:4.0f}%: {row['yield']*100:5.1f}%"
        )
    lines.append("")
    lines.append(
        f"fraction of dies where DDLX beats the DLX worst-case clock: "
        f"{study.fraction_desync_faster*100:.1f}%  (paper: ~90%)"
    )
    lines.append("")
    lines.append(
        "simulation-backed study (64-lane batch kernel, "
        f"{int(sim_study.sim_stats['chips'])} dies gate-level, "
        f"{sim_study.sim_stats['chips_per_second']:.0f} chips/s):"
    )
    lines.append(
        f"  fraction faster {sim_study.fraction_desync_faster*100:5.1f}%, "
        f"p50 {sim_study.percentile(50):.3f} ns, "
        f"p95 {sim_study.percentile(95):.3f} ns (lane 0 parity-checked)"
    )
    emit("fig_5_4", "\n".join(lines))

    assert 0.80 < study.fraction_desync_faster <= 1.0
    assert study.mean_desync_period < study.sync_period
    assert data["best_period"] < data["nominal"] < data["worst_period"]
    assert study.percentile(50) < study.percentile(95)
    yields = study.yield_vs_margin([0.0, 0.10, 0.20])
    assert yields[0]["yield"] >= yields[1]["yield"] >= yields[2]["yield"]
    # the gate-level lane-batched study agrees with the analytic model
    # on the headline number
    assert 0.80 < sim_study.fraction_desync_faster <= 1.0
    assert sim_study.backend == "sim"
