"""Figure 5.4: real operating delay -- DDLX average case vs DLX worst case.

The synchronous chip must ship clocked at the worst corner; the
desynchronized chip's delay elements live on the same die and scale
with it, so its effective period follows each chip's actual speed.
The paper assumes a normal distribution between the corners (like
SSTA) and finds the desynchronized circuit faster than the synchronous
one on ~90% of dies (the shaded area of the figure).
"""

from conftest import emit, run_once

from repro.desync import Drdesync
from repro.designs import dlx_core
from repro.perf import effective_period_model
from repro.variability import VariabilityModel, run_study


def test_fig_5_4_variability_distribution(benchmark, hs_library):
    def run():
        module = dlx_core(hs_library, registers=8, multiplier=False, width=16)
        result = Drdesync(hs_library).run(module)
        # nominal (typical-die) effective period of the DDLX: midpoint
        # between the characterised corners, like the paper's assumption
        worst = effective_period_model(result, hs_library, "worst")
        best = effective_period_model(result, hs_library, "best")
        worst_derate = hs_library.corner("worst").derate
        nominal = worst.effective_period / worst_derate
        model = VariabilityModel(sigma_inter=0.12, sigma_intra=0.04)
        study = run_study(nominal, model=model, n_chips=20000, margin=0.10)
        return {
            "worst_period": worst.effective_period,
            "best_period": best.effective_period,
            "nominal": nominal,
            "study": study,
        }

    data = run_once(benchmark, run)
    study = data["study"]

    lines = [
        "Figure 5.4 -- real operation delay: DDLX distribution vs DLX worst",
        f"DDLX worst-case period : {data['worst_period']:8.3f} ns",
        f"DDLX best-case period  : {data['best_period']:8.3f} ns",
        f"DDLX nominal period    : {data['nominal']:8.3f} ns",
        f"DLX shipping period    : {study.sync_period:8.3f} ns (worst case)",
        f"DDLX mean period       : {study.mean_desync_period:8.3f} ns",
        "",
        "DDLX effective-period distribution (20000 Monte-Carlo dies):",
    ]
    for bucket in study.histogram(bins=14):
        bar = "#" * int(round(bucket["probability"] * 200))
        lines.append(
            f"  {bucket['low']:6.2f}-{bucket['high']:6.2f} ns "
            f"{bucket['probability']*100:5.1f}% {bar}"
        )
    lines.append("")
    lines.append(
        f"fraction of dies where DDLX beats the DLX worst-case clock: "
        f"{study.fraction_desync_faster*100:.1f}%  (paper: ~90%)"
    )
    emit("fig_5_4", "\n".join(lines))

    assert 0.80 < study.fraction_desync_faster <= 1.0
    assert study.mean_desync_period < study.sync_period
    assert data["best_period"] < data["nominal"] < data["worst_period"]
