"""Table 5.1: area results for synchronous and desynchronized DLX.

Implements the DLX twice through the same backend -- once conventional,
once desynchronized -- and prints the post-synthesis and post-layout
area comparison in the table's layout.  Absolute numbers come from the
synthetic CORE9-class library and the simplified P&R, so the *shape* is
what reproduces: the overhead is dominated by flip-flop substitution
(paper: sequential +17.66%, cell area +6.5%, core +13.4%).

The experiment runs on the flow engine: netlist generation, the
desynchronization stages (including the STA-characterised delay
ladder) and P&R all cache under ``.repro_cache/``, and the benchmark
re-runs the whole comparison warm to verify the cache actually short
circuits the flow -- the journal (``results/table_5_1_journal.jsonl``)
records the hits, and ``results/engine-stats.json`` keeps the stage
timings and hit rate for the perf trajectory.
"""

import os
import time

from conftest import RESULTS_DIR, emit, run_once

from repro.engine import write_engine_stats
from repro.flow.implementation import implement_comparison
from repro.obs.bench import machine_metadata

PAPER = {
    "Post Synthesis": {
        "# nets": (14925, 16636, 11.46),
        "# cells": (14855, 16550, 11.41),
        "cell area (um2)": (188321.49, 200593.14, 6.52),
        "combinational logic (um2)": (134443.56, 137200.78, 2.05),
        "sequential logic (um2)": (53877.93, 63392.36, 17.66),
    },
    "Post Layout": {
        "core size (um2)": (207195.54, 235048.18, 13.44),
        "core utilization (%)": (95.06, 91.16, -4.10),
    },
}

#: stages the warm run must load from cache instead of re-running
MUST_HIT = ("generate.dlx", "desync:delays", "desync:import")


def _implement(engine, dlx_factory, library):
    sync_module = dlx_factory(engine=engine)
    desync_module = sync_module.clone()
    _sync, _desync, table = implement_comparison(
        "DLX",
        sync_module,
        desync_module,
        library,
        sync_utilization=0.95,
        desync_utilization=0.91,
        engine=engine,
    )
    return table


def test_table_5_1_dlx_area(benchmark, hs_library, dlx_factory, make_engine):
    journal_path = os.path.join(RESULTS_DIR, "table_5_1_journal.jsonl")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    engine = make_engine(journal_path=journal_path)

    def run():
        return _implement(engine, dlx_factory, hs_library)

    start = time.perf_counter()
    table = run_once(benchmark, run)
    cold_time = time.perf_counter() - start
    cold_events = engine.journal.select("stage_end")
    cold_misses = sum(1 for e in cold_events if e.get("cache") == "miss")

    # -- warm re-run: same cache, fresh modules ------------------------
    start = time.perf_counter()
    warm_table = _implement(engine, dlx_factory, hs_library)
    warm_time = time.perf_counter() - start

    warm_events = engine.journal.select("stage_end")[len(cold_events):]
    warm_hits = {e["stage"] for e in warm_events if e.get("cache") == "hit"}
    for stage in MUST_HIT:
        assert stage in warm_hits, (
            f"warm run should load {stage!r} from cache, hits: "
            f"{sorted(warm_hits)}"
        )
    assert warm_table.phases == table.phases, "cache must not change results"
    if cold_misses > 0:
        # only meaningful when the first run actually executed stages
        assert warm_time * 2 <= cold_time, (
            f"warm run ({warm_time:.2f}s) should be >=2x faster than "
            f"cold ({cold_time:.2f}s)"
        )

    stats = write_engine_stats(
        os.path.join(RESULTS_DIR, "engine-stats.json"),
        engine.results,
        cache=engine.cache,
        extra={
            "benchmark": "table_5_1",
            "cold_s": round(cold_time, 3),
            "warm_s": round(warm_time, 3),
            "meta": machine_metadata(),
        },
    )
    engine.journal.close()

    lines = [table.to_text(), "", "paper reference (ST CORE9 90nm, Astro):"]
    for phase, rows in PAPER.items():
        lines.append(f"-- {phase} --")
        for name, (sync_v, desync_v, ovhd) in rows.items():
            lines.append(
                f"{name:28s} {sync_v:>14.2f} {desync_v:>14.2f} {ovhd:>8.2f}"
            )
    lines.append("")
    lines.append(
        f"engine: cold {cold_time:.2f}s -> warm {warm_time:.2f}s, "
        f"cache hit rate {stats['cache']['hit_rate']:.0%}"
    )
    emit("table_5_1", "\n".join(lines))

    synthesis = table.phases["Post Synthesis"]
    layout = table.phases["Post Layout"]
    # shape assertions against the paper's findings
    seq = synthesis["sequential logic (um2)"]["overhead_pct"]
    assert 10 < seq < 30, "FF substitution drives the sequential overhead"
    assert abs(seq - 17.66) < 8, "close to the paper's +17.66%"
    # sequential overhead dominates the combinational one per unit area
    assert (
        layout["core size (um2)"]["overhead_pct"] > 0
    ), "desynchronized core is bigger"
    assert layout["core size (um2)"]["overhead_pct"] < 40
    # utilization drops for the desynchronized version (paper: -4.1%)
    assert layout["core utilization (%)"]["overhead_pct"] < 0
