"""Table 5.1: area results for synchronous and desynchronized DLX.

Implements the DLX twice through the same backend -- once conventional,
once desynchronized -- and prints the post-synthesis and post-layout
area comparison in the table's layout.  Absolute numbers come from the
synthetic CORE9-class library and the simplified P&R, so the *shape* is
what reproduces: the overhead is dominated by flip-flop substitution
(paper: sequential +17.66%, cell area +6.5%, core +13.4%).
"""

from conftest import emit, run_once

from repro.designs import dlx_core
from repro.flow import (
    compare_implementations,
    implement_desynchronized,
    implement_synchronous,
)

PAPER = {
    "Post Synthesis": {
        "# nets": (14925, 16636, 11.46),
        "# cells": (14855, 16550, 11.41),
        "cell area (um2)": (188321.49, 200593.14, 6.52),
        "combinational logic (um2)": (134443.56, 137200.78, 2.05),
        "sequential logic (um2)": (53877.93, 63392.36, 17.66),
    },
    "Post Layout": {
        "core size (um2)": (207195.54, 235048.18, 13.44),
        "core utilization (%)": (95.06, 91.16, -4.10),
    },
}


def test_table_5_1_dlx_area(benchmark, hs_library):
    def run():
        sync_module = dlx_core(hs_library)
        desync_module = sync_module.clone()
        sync = implement_synchronous(
            sync_module, hs_library, target_utilization=0.95
        )
        desync = implement_desynchronized(
            desync_module, hs_library, target_utilization=0.91
        )
        return compare_implementations("DLX", sync, desync)

    table = run_once(benchmark, run)

    lines = [table.to_text(), "", "paper reference (ST CORE9 90nm, Astro):"]
    for phase, rows in PAPER.items():
        lines.append(f"-- {phase} --")
        for name, (sync_v, desync_v, ovhd) in rows.items():
            lines.append(
                f"{name:28s} {sync_v:>14.2f} {desync_v:>14.2f} {ovhd:>8.2f}"
            )
    emit("table_5_1", "\n".join(lines))

    synthesis = table.phases["Post Synthesis"]
    layout = table.phases["Post Layout"]
    # shape assertions against the paper's findings
    seq = synthesis["sequential logic (um2)"]["overhead_pct"]
    assert 10 < seq < 30, "FF substitution drives the sequential overhead"
    assert abs(seq - 17.66) < 8, "close to the paper's +17.66%"
    # sequential overhead dominates the combinational one per unit area
    assert (
        layout["core size (um2)"]["overhead_pct"] > 0
    ), "desynchronized core is bigger"
    assert layout["core size (um2)"]["overhead_pct"] < 40
    # utilization drops for the desynchronized version (paper: -4.1%)
    assert layout["core utilization (%)"]["overhead_pct"] < 0
