"""Figure 5.2: block diagram of the (desynchronized) DLX.

The paper reports that "the automatically assigned desynchronization
regions matched the 4 pipeline stages of the processor" and draws the
synchronous pipeline next to its desynchronized twin where every stage
got its own controller pair and the C-elements join the stage-to-stage
requests.  This bench runs the automatic grouping on the DLX and
prints the recovered region structure and data-dependency graph.
"""

from conftest import emit, run_once

import networkx as nx

from repro.desync import Drdesync, fanin_fanout
from repro.designs import dlx_core


def test_fig_5_2_dlx_regions(benchmark, hs_library):
    def run():
        module = dlx_core(hs_library, registers=8, multiplier=False, width=16)
        tool = Drdesync(hs_library)
        return module, tool.run(module)

    module, result = run_once(benchmark, run)

    active = {
        name: region
        for name, region in result.region_map.regions.items()
        if region.sequential_instances(module, result.gatefile)
    }
    lines = [
        "Figure 5.2 -- automatically assigned DLX desynchronization regions",
        f"{'region':>8s} {'cells':>6s} {'latch pairs':>12s} "
        f"{'fanin':>6s} {'fanout':>7s}  representative registers",
    ]
    for name in sorted(active):
        region = active[name]
        seq = region.sequential_instances(module, result.gatefile)
        masters = [s for s in seq if s.endswith("_lm")]
        fanin, fanout = fanin_fanout(result.ddg, name)
        sample = ", ".join(sorted({m.rsplit("_", 2)[0] for m in masters})[:3])
        lines.append(
            f"{name:>8s} {len(region.instances):>6d} {len(masters):>12d} "
            f"{fanin:>6d} {fanout:>7d}  {sample}"
        )
    edges = sorted(
        (a, b) for a, b in result.ddg.edges() if a != "ENV" and b != "ENV"
    )
    lines.append("data-dependency edges: " + ", ".join(f"{a}->{b}" for a, b in edges))
    lines.append(
        "paper: the automatic regions matched the 4 pipeline stages "
        "(IF / ID / EX / MEM); each gets a master+slave controller pair"
    )
    emit("fig_5_2", "\n".join(lines))

    # a pipelined CPU decomposes into at least the 4 paper stages
    assert len(active) >= 4
    # every active region got exactly one master/slave controller pair
    for name in active:
        assert (name, "master") in result.network.controllers
        assert (name, "slave") in result.network.controllers
    # the PC loop shows up as a DDG cycle
    core = result.ddg.subgraph(n for n in result.ddg if n != "ENV")
    assert any(True for _ in nx.simple_cycles(core))
