"""Ablations of the design choices DESIGN.md calls out.

1. grouping heuristics on/off (logic cleaning, bus merging) -- region
   counts and delay-element totals (the finer the regions, the more
   control overhead);
2. delay-element margin sweep -- area vs safety;
3. controller protocol concurrency (Figure 2.4 zoo) as the analytic
   cycle-time bound via maximum cycle ratio;
4. the road not taken: completion detection (section 2.4.4) modelled
   as the paper describes it -- ~2x combinational area/power for
   average-case instead of matched worst-case delay.

The reduced-DLX netlists these ablations share come from the
``dlx_factory`` fixture, so generation happens once per parameter set
and later runs start from the engine cache.
"""

from conftest import emit, run_once

import networkx as nx

from repro.desync import DesyncOptions, Drdesync
from repro.designs import figure22_circuit
from repro.flow import area_report
from repro.liberty import build_gatefile
from repro.netlist import parse_verilog
from repro.perf import max_cycle_ratio
from repro.stg import PROTOCOLS, explore


def test_ablation_grouping_heuristics(benchmark, hs_library, dlx_factory):
    def run():
        rows = []
        for clean in (True, False):
            module = dlx_factory(registers=8, multiplier=False, width=16)
            result = Drdesync(hs_library).run(
                module, DesyncOptions(clean=clean)
            )
            active = sum(
                1
                for region in result.region_map.regions.values()
                if region.sequential_instances(module, result.gatefile)
            )
            delem_cells = len(result.network.delay_instances())
            rows.append(
                {
                    "logic_cleaning": clean,
                    "regions": active,
                    "delay_cells": delem_cells,
                    "cells": len(module.instances),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    lines = [
        "Ablation 1 -- logic cleaning before grouping (DLX)",
        f"{'cleaning':>9s} {'regions':>8s} {'delay cells':>12s} {'cells':>7s}",
    ]
    for row in rows:
        lines.append(
            f"{str(row['logic_cleaning']):>9s} {row['regions']:>8d} "
            f"{row['delay_cells']:>12d} {row['cells']:>7d}"
        )
    emit("ablation_grouping", "\n".join(lines))
    # both variants work; cleaning must not increase the region count
    assert rows[0]["regions"] <= rows[1]["regions"] + 2


def test_ablation_bus_heuristic(benchmark, hs_library):
    text = """
    module m (input a, input b, input s, input clk, output [1:0] q);
      wire [1:0] muxed;
      MUX2X1 m0 (.A(a), .B(b), .S(s), .Z(muxed[0]));
      MUX2X1 m1 (.A(b), .B(a), .S(s), .Z(muxed[1]));
      DFFX1 r0 (.D(muxed[0]), .CK(clk), .Q(q[0]));
      DFFX1 r1 (.D(muxed[1]), .CK(clk), .Q(q[1]));
    endmodule
    """

    def run():
        from repro.desync import group_regions

        gatefile = build_gatefile(hs_library)
        with_bus = group_regions(
            parse_verilog(text).top, gatefile, use_bus_heuristic=True
        )
        without = group_regions(
            parse_verilog(text).top, gatefile, use_bus_heuristic=False
        )
        return len(with_bus.regions), len(without.regions)

    merged, split = run_once(benchmark, run)
    emit(
        "ablation_bus",
        "Ablation 2 -- bus-name grouping (Figure 3.6 case)\n"
        f"with bus heuristic   : {merged} region(s)\n"
        f"without bus heuristic: {split} region(s)\n"
        "the multibit multiplexer stays in one region only with the "
        "heuristic (requires bus[n] naming, section 3.2.2)",
    )
    assert merged < split


def test_ablation_delay_margin(benchmark, hs_library):
    def run():
        rows = []
        for margin in (0.05, 0.10, 0.25, 0.50):
            module = figure22_circuit(hs_library)
            result = Drdesync(hs_library).run(
                module, DesyncOptions(delay_margin=margin)
            )
            gatefile = result.gatefile
            report = area_report(module, hs_library, gatefile)
            delem_cells = sum(
                len(e.instances)
                for e in result.network.delay_elements.values()
            )
            rows.append(
                {
                    "margin": margin,
                    "delay_cells": delem_cells,
                    "cell_area": report.cell_area,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    lines = [
        "Ablation 3 -- delay-element margin (figure22 circuit)",
        f"{'margin':>7s} {'delay cells':>12s} {'cell area (um2)':>16s}",
    ]
    for row in rows:
        lines.append(
            f"{row['margin']:>7.2f} {row['delay_cells']:>12d} "
            f"{row['cell_area']:>16.1f}"
        )
    emit("ablation_margin", "\n".join(lines))
    cells = [row["delay_cells"] for row in rows]
    assert cells == sorted(cells), "bigger margin = longer delay chains"


def test_ablation_protocol_concurrency(benchmark, hs_library):
    """Cycle-time bound per protocol: state count as concurrency proxy.

    A protocol with S reachable states allows S/2 events of slack per
    handshake cycle; with stage latency L and ack overhead A the ring
    bound is (L + A) / min(1, S/8) -- more concurrency hides more of
    the control overhead.  We report the maximum-cycle-ratio bound of a
    4-stage ring weighted accordingly.
    """

    def run():
        rows = []
        stage_latency = 1.0
        for name in (
            "non_overlapping", "simple", "semi_decoupled",
            "desync_model", "fully_decoupled",
        ):
            protocol = PROTOCOLS[name]
            states = protocol.state_count()
            # concurrency factor: fraction of the handshake the control
            # can overlap with computation (normalised to the ladder)
            overlap = min(1.0, states / 10.0)
            graph = nx.DiGraph()
            stages = 4
            for index in range(stages):
                succ = (index + 1) % stages
                weight = stage_latency + (1.0 - overlap) * 0.5
                graph.add_edge(index, succ, weight=weight, tokens=1.0)
            rows.append(
                {
                    "protocol": name,
                    "states": states,
                    "cycle_bound": max_cycle_ratio(graph),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    lines = [
        "Ablation 4 -- protocol concurrency vs ring cycle-time bound",
        f"{'protocol':18s} {'states':>6s} {'cycle bound':>12s}",
    ]
    for row in rows:
        lines.append(
            f"{row['protocol']:18s} {row['states']:>6d} "
            f"{row['cycle_bound']:>12.3f}"
        )
    emit("ablation_protocol", "\n".join(lines))
    bounds = [row["cycle_bound"] for row in rows]
    assert bounds == sorted(bounds, reverse=True), (
        "more concurrency never hurts the bound"
    )


def test_ablation_completion_detection_model(benchmark, hs_library, dlx_factory):
    """Section 2.4.4: completion detection vs delay elements.

    The paper rejects completion detection because the transformation
    roughly doubles combinational area and power; in exchange it gives
    true average-case delay.  We model that trade on the reduced DLX:
    CD area = 2x combinational area, CD delay = the average sensitised
    path instead of the critical one.
    """

    def run():
        module = dlx_factory(registers=8, multiplier=False, width=16)
        golden = module.clone()
        result = Drdesync(hs_library).run(module)
        gatefile = result.gatefile
        desync = area_report(module, hs_library, gatefile)
        sync = area_report(golden, hs_library, gatefile)
        worst_region = max(
            result.network.region_delays.values(), default=0.0
        )
        average_case = 0.6 * worst_region  # typical sensitised depth
        cd_comb_area = 2.0 * sync.combinational_area
        delem_area = sum(
            hs_library.cells[module.instances[i].cell].area
            for e in result.network.delay_elements.values()
            for i in e.instances
        )
        return {
            "delem_area": delem_area,
            "cd_extra_area": cd_comb_area - sync.combinational_area,
            "matched_delay": worst_region,
            "cd_delay": average_case,
        }

    data = run_once(benchmark, run)
    emit(
        "ablation_completion_detection",
        "Ablation 5 -- delay elements vs completion detection (sec 2.4.4)\n"
        f"delay-element area          : {data['delem_area']:10.1f} um2\n"
        f"completion-detection extra  : {data['cd_extra_area']:10.1f} um2 (~2x comb)\n"
        f"matched (worst) region delay: {data['matched_delay']:10.3f} ns\n"
        f"average-case (CD) delay     : {data['cd_delay']:10.3f} ns\n"
        "the paper keeps delay elements: the CD area/power cost (~2x) "
        "outweighs the average-case gain for these designs",
    )
    assert data["cd_extra_area"] > data["delem_area"]
    assert data["cd_delay"] < data["matched_delay"]
