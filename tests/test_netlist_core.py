"""Unit tests for the netlist object model."""

import pytest

from repro.netlist import (
    Module,
    Netlist,
    NetlistError,
    PinRef,
    PortDirection,
    bus_base,
    bus_index,
    driver_of,
    sinks_of,
)


class DictCellInfo:
    """Minimal CellInfoProvider backed by a dict for tests."""

    def __init__(self, table):
        self._table = table

    def pin_direction(self, cell, pin):
        return self._table[cell][pin]


AND_INFO = DictCellInfo(
    {
        "AND2": {
            "A": PortDirection.INPUT,
            "B": PortDirection.INPUT,
            "Z": PortDirection.OUTPUT,
        },
        "INV": {"A": PortDirection.INPUT, "Z": PortDirection.OUTPUT},
    }
)


def build_simple_module():
    mod = Module("m")
    mod.add_port("a", PortDirection.INPUT)
    mod.add_port("b", PortDirection.INPUT)
    mod.add_port("y", PortDirection.OUTPUT)
    mod.add_instance("u1", "AND2", {"A": "a", "B": "b", "Z": "n1"})
    mod.add_instance("u2", "INV", {"A": "n1", "Z": "y"})
    return mod


def test_bus_name_helpers():
    assert bus_base("data[3]") == "data"
    assert bus_index("data[3]") == 3
    assert bus_base("data_3") is None
    assert bus_index("scalar") is None


def test_vector_port_bits_msb_first():
    mod = Module("m")
    port = mod.add_port("d", PortDirection.INPUT, msb=3, lsb=0)
    assert port.width == 4
    assert port.bit_names() == ["d[3]", "d[2]", "d[1]", "d[0]"]
    assert "d[0]" in mod.nets


def test_connectivity_is_bidirectional():
    mod = build_simple_module()
    net = mod.nets["n1"]
    assert PinRef("u1", "Z") in net.connections
    assert PinRef("u2", "A") in net.connections
    assert mod.net_of("u1", "Z") == "n1"


def test_driver_and_sinks():
    mod = build_simple_module()
    assert driver_of(mod, "n1", AND_INFO) == PinRef("u1", "Z")
    assert sinks_of(mod, "n1", AND_INFO) == [PinRef("u2", "A")]
    # input port drives its net
    assert driver_of(mod, "a", AND_INFO) == PinRef(None, "a")
    # output port is a sink
    assert PinRef(None, "y") in sinks_of(mod, "y", AND_INFO)


def test_disconnect_and_remove_instance():
    mod = build_simple_module()
    mod.remove_instance("u2")
    assert "u2" not in mod.instances
    assert sinks_of(mod, "n1", AND_INFO) == []
    assert mod.check() == []


def test_reconnect_pin_replaces_old_binding():
    mod = build_simple_module()
    mod.connect("u2", "A", "a")
    assert mod.net_of("u2", "A") == "a"
    assert sinks_of(mod, "n1", AND_INFO) == []
    assert mod.check() == []


def test_merge_nets_moves_connections():
    mod = build_simple_module()
    mod.ensure_net("alias")
    mod.connect("u2", "A", "alias")
    mod.merge_nets("n1", "alias")
    assert mod.net_of("u2", "A") == "n1"
    assert "alias" not in mod.nets
    assert mod.check() == []


def test_merge_nets_refuses_to_eat_port_net():
    mod = build_simple_module()
    with pytest.raises(NetlistError):
        mod.merge_nets("n1", "a")


def test_rename_net_updates_pins():
    mod = build_simple_module()
    mod.rename_net("n1", "mid")
    assert mod.net_of("u1", "Z") == "mid"
    assert mod.check() == []


def test_duplicate_instance_rejected():
    mod = build_simple_module()
    with pytest.raises(NetlistError):
        mod.add_instance("u1", "INV")


def test_constant_nets_are_shared():
    mod = Module("m")
    one_a = mod.constant_net(1)
    one_b = mod.constant_net(1)
    zero = mod.constant_net(0)
    assert one_a is one_b
    assert one_a.constant_value == 1
    assert zero.constant_value == 0


def test_new_name_avoids_collisions():
    mod = build_simple_module()
    mod.ensure_net("x_1")
    name = mod.new_name("x")
    assert name not in mod.nets
    assert name not in mod.instances


def test_netlist_top_selection():
    netlist = Netlist()
    netlist.add_module(Module("first"))
    netlist.add_module(Module("second"))
    assert netlist.top.name == "first"
    netlist.set_top("second")
    assert netlist.top.name == "second"
    with pytest.raises(NetlistError):
        netlist.set_top("missing")


def test_check_detects_dangling_reference():
    mod = build_simple_module()
    # simulate corruption: pin bound to a net that doesn't exist
    mod.instances["u1"].pins["Z"] = "ghost"
    problems = mod.check()
    assert any("ghost" in p for p in problems)
