"""Clock-domain analysis and partial desynchronization tests."""

import pytest

from repro.desync import DesyncOptions, Drdesync
from repro.desync.domains import (
    MultipleClockError,
    analyze_clock_domains,
    select_domain,
)
from repro.designs import Builder, counter
from repro.liberty import build_gatefile, core9_hs
from repro.netlist import Module, PortDirection
from repro.sim import HandshakeTestbench, Simulator, initialize_registers


@pytest.fixture(scope="module")
def lib():
    return core9_hs()


def two_domain_design(lib):
    """Two counters on separate clocks, domain B sampling domain A."""
    module = Module("twoclk")
    b = Builder(module, lib, clock="clk_a")
    module.add_port("clk_a", PortDirection.INPUT)
    module.add_port("clk_b", PortDirection.INPUT)
    out_a = b.output_port("count_a", 4)
    out_b = b.output_port("sample_b", 4)

    state = [f"sa[{i}]" for i in range(4)]
    for net in state:
        module.ensure_net(net)
    nxt = b.incrementer(state, name="inca")
    for i in range(4):
        b.dff(nxt[i], state[i], name=f"r_a_{i}")
    b.connect_output(state, out_a)

    # domain B: two-stage synchronizer sampling domain A's counter
    for i in range(4):
        module.add_instance(
            f"r_b1_{i}", "DFFX1",
            {"D": state[i], "CK": "clk_b", "Q": f"sb1[{i}]"},
        )
        module.add_instance(
            f"r_b2_{i}", "DFFX1",
            {"D": f"sb1[{i}]", "CK": "clk_b", "Q": f"sb2[{i}]"},
        )
    b.connect_output([f"sb2[{i}]" for i in range(4)], out_b)
    return module


def test_domain_analysis_partitions_by_clock_root(lib):
    module = two_domain_design(lib)
    gatefile = build_gatefile(lib)
    domains = analyze_clock_domains(module, gatefile)
    assert set(domains.domains) == {"clk_a", "clk_b"}
    assert {f"r_a_{i}" for i in range(4)} <= domains.domains["clk_a"]
    assert {f"r_b1_{i}" for i in range(4)} <= domains.domains["clk_b"]
    assert not domains.is_single


def test_domain_analysis_traces_through_buffers_and_gates(lib):
    module = Module("m")
    module.add_port("clk", PortDirection.INPUT)
    module.add_port("en", PortDirection.INPUT)
    module.add_instance("buf", "CKBUFX4", {"A": "clk", "Z": "clk_buf"})
    module.add_instance(
        "icg", "CKGATEX1", {"EN": "en", "CK": "clk_buf", "GCK": "gck"}
    )
    module.add_instance("r", "DFFX1", {"D": "en", "CK": "gck", "Q": "q"})
    gatefile = build_gatefile(lib)
    domains = analyze_clock_domains(module, gatefile)
    assert domains.domain_of("r") == "clk"


def test_single_clock_designs_unaffected(lib):
    module = counter(lib)
    gatefile = build_gatefile(lib)
    domains = analyze_clock_domains(module, gatefile)
    assert domains.is_single
    assert select_domain(domains, None) is None


def test_multi_clock_without_selection_raises(lib):
    module = two_domain_design(lib)
    tool = Drdesync(lib)
    with pytest.raises(MultipleClockError):
        tool.run(module)


def test_unknown_domain_rejected(lib):
    module = two_domain_design(lib)
    tool = Drdesync(lib)
    with pytest.raises(MultipleClockError):
        tool.run(module, DesyncOptions(clock_domain="clk_z"))


def test_partial_desynchronization(lib):
    """Desynchronize domain A; domain B keeps flip-flops and clk_b."""
    module = two_domain_design(lib)
    tool = Drdesync(lib)
    result = tool.run(module, DesyncOptions(clock_domain="clk_a"))
    assert module.check() == []
    # domain A flip-flops became latch pairs
    assert "r_a_0" not in module.instances
    assert "r_a_0_ls" in module.instances
    # domain B flip-flops survive, still clocked by clk_b
    for i in range(4):
        assert module.instances[f"r_b1_{i}"].cell == "DFFX1"
        assert module.instances[f"r_b1_{i}"].pins["CK"] == "clk_b"
    assert "clk_b" in module.ports
    assert "clk_a" not in module.ports  # the converted clock is gone


def test_partial_desync_simulates(lib):
    """The handshake domain free-runs while clk_b keeps sampling."""
    module = two_domain_design(lib)
    tool = Drdesync(lib)
    result = tool.run(module, DesyncOptions(clock_domain="clk_a"))
    sim = Simulator(module, lib)
    bench = HandshakeTestbench(
        sim, result.network.env_ports, result.network.reset_net
    )
    sim.set_input("clk_b", 0)
    bench.apply_reset(0)
    # interleave: free-run the handshake, tick clk_b now and then
    samples = []
    for _ in range(8):
        bench.run_free(12.0)
        sim.set_input("clk_b", 1)
        bench.run_free(2.0)
        sim.set_input("clk_b", 0)
        bench.run_free(2.0)
        samples.append(sim.bus_value([f"sb2[{i}]" for i in range(4)]))
    # domain A really ran: its slave latches captured many items
    region_a_captures = [
        c for c in sim.captures if c.instance.startswith("r_a_")
    ]
    assert len(region_a_captures) > 20
    # domain B's synchronizer sampled a changing counter
    values = [s for s in samples if s is not None]
    assert len(values) >= 4
    assert len(set(values)) >= 2
