"""Tests for the service telemetry layer (PR 7).

Covers the tentpole and its satellites: bounded tracer retention with
a dropped-span counter, thread-scoped tracer activation (per-job trace
isolation across concurrent daemon jobs), trace-ID stamping on run
journals / flow reports / exported trace events, the ring-buffer time
series + streaming histogram quantiles, declarative SLO parsing and
burn-rate evaluation, the Prometheus text exposition upgrade, the new
HTTP surfaces (``/jobs/<id>/trace``, ``/timeseries``, ``/dashboard``)
with Perfetto validation, and the daemon soak guarantee that telemetry
memory stays flat over many jobs.
"""

import json
import re
import threading
import time

import pytest

from repro.engine import RunJournal, read_journal
from repro.obs import trace
from repro.obs.export import prometheus_text, trace_document
from repro.obs.metrics import MetricsRegistry, render_name, split_name
from repro.obs.timeseries import (
    RingBuffer,
    TimeSeriesSampler,
    TimeSeriesStore,
    quantile_from_buckets,
)
from repro.service import (
    SLO,
    JobSpec,
    ServiceClient,
    ServiceClientError,
    ServiceDaemon,
    default_slos,
    make_server,
    parse_slo,
)
from repro.service.telemetry import TelemetryHub, dashboard_html


# ---------------------------------------------------------------------------
# Tracer: bounded retention + thread-scoped activation
# ---------------------------------------------------------------------------

def test_tracer_default_retention_is_unbounded():
    tracer = trace.Tracer()
    for i in range(100):
        with tracer.span(f"s{i}"):
            pass
    assert len(tracer) == 100
    assert tracer.dropped == 0


def test_tracer_max_spans_rings_and_counts_drops():
    tracer = trace.Tracer(max_spans=10)
    for i in range(25):
        with tracer.span(f"s{i}"):
            pass
    assert len(tracer) == 10
    assert tracer.dropped == 15
    # the newest spans survive, the oldest were dropped
    names = [span.name for span in tracer.finished()]
    assert names == [f"s{i}" for i in range(15, 25)]


def test_trace_document_default_output_unchanged_by_new_fields():
    """A plain tracer's export carries no trace_id / dropped noise."""
    tracer = trace.Tracer()
    with tracer.span("work"):
        pass
    document = trace_document(tracer)
    assert document["otherData"] == {"producer": "repro.obs"}
    events = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert "args" not in events[0]  # no attrs, no trace_id -> no args


def test_trace_document_carries_trace_id_and_drop_count():
    tracer = trace.Tracer(max_spans=2, trace_id="abc123")
    for i in range(5):
        with tracer.span(f"s{i}"):
            pass
    document = trace_document(tracer)
    assert document["otherData"]["trace_id"] == "abc123"
    assert document["otherData"]["dropped_spans"] == 3
    for event in document["traceEvents"]:
        if event["ph"] == "X":
            assert event["args"]["trace_id"] == "abc123"


def test_scoped_tracer_overrides_global_for_current_thread_only():
    seen = {}

    def worker(name):
        tracer = trace.Tracer(trace_id=name)
        with trace.scoped(tracer):
            with trace.span("inner"):
                time.sleep(0.01)
        seen[name] = [span.name for span in tracer.finished()]

    threads = [
        threading.Thread(target=worker, args=(f"job{i}",)) for i in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    # each thread's spans landed in its own tracer, exactly once
    assert all(names == ["inner"] for names in seen.values())
    # the global tracer (disabled default) saw nothing
    assert trace.span("outside") is trace.NULL_SPAN


def test_scoped_none_is_a_noop_and_scopes_nest():
    outer = trace.Tracer(trace_id="outer")
    inner = trace.Tracer(trace_id="inner")
    with trace.scoped(None):
        assert trace.get_tracer().trace_id is None
    with trace.scoped(outer):
        assert trace.get_tracer() is outer
        with trace.scoped(inner):
            assert trace.get_tracer() is inner
        assert trace.get_tracer() is outer
    assert trace.get_tracer().trace_id is None


# ---------------------------------------------------------------------------
# RunJournal: trace-ID stamping + no interleaved lines
# ---------------------------------------------------------------------------

def test_journal_stamps_trace_id_on_every_entry(tmp_path):
    path = str(tmp_path / "j.jsonl")
    journal = RunJournal(path, trace_id="feedface")
    journal.record("one", value=1)
    journal.record("two", value=2)
    journal.close()
    events = read_journal(path)
    assert [e["trace_id"] for e in events] == ["feedface", "feedface"]
    # and in memory too
    assert all(e["trace_id"] == "feedface" for e in journal.events)


def test_journal_without_trace_id_is_unchanged(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with RunJournal(path) as journal:
        journal.record("evt")
    assert "trace_id" not in read_journal(path)[0]


def test_journal_concurrent_writers_never_interleave(tmp_path):
    """Many threads hammering one journal: every line parses whole."""
    path = str(tmp_path / "j.jsonl")
    journal = RunJournal(path, trace_id="cafe01")
    per_thread = 200

    def writer(tid):
        for i in range(per_thread):
            journal.record("spam", tid=tid, i=i, pad="x" * 64)

    threads = [
        threading.Thread(target=writer, args=(t,)) for t in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    journal.close()
    with open(path) as handle:
        lines = [line for line in handle if line.strip()]
    assert len(lines) == 8 * per_thread
    for line in lines:
        entry = json.loads(line)  # raises on a torn line
        assert entry["trace_id"] == "cafe01"


# ---------------------------------------------------------------------------
# Ring buffers + time series
# ---------------------------------------------------------------------------

def test_ring_buffer_caps_and_orders():
    ring = RingBuffer(capacity=4)
    for i in range(10):
        ring.append(float(i), float(i * 10))
    assert len(ring) == 4
    assert ring.dropped == 6
    assert ring.points() == [(6.0, 60.0), (7.0, 70.0), (8.0, 80.0), (9.0, 90.0)]
    assert ring.last() == (9.0, 90.0)
    assert ring.since(8.0) == [(8.0, 80.0), (9.0, 90.0)]


def test_quantile_from_buckets_interpolates():
    # 10 observations uniform in (0, 10]: bounds 5 and 10, 5 in each
    assert quantile_from_buckets([5.0, 10.0], [5, 5], 0, 0.5) == 5.0
    assert quantile_from_buckets([5.0, 10.0], [5, 5], 0, 0.25) == 2.5
    # overflow clamps to the last bound
    assert quantile_from_buckets([5.0], [0], 3, 0.99) == 5.0
    # empty window
    assert quantile_from_buckets([5.0], [0], 0, 0.5) is None


def test_store_derives_rates_gauges_and_quantiles():
    registry = MetricsRegistry()
    store = TimeSeriesStore(capacity=16)
    registry.counter("c").inc(5)
    registry.gauge("g").set(3.0)
    hist = registry.histogram("h", buckets=[1.0, 2.0])

    store.sample(registry, now=100.0)  # primes; gauges recorded
    assert store.get("g").ring.points() == [(100.0, 3.0)]
    assert store.get("c.rate") is None

    registry.counter("c").inc(10)
    for value in (0.5, 0.5, 1.5, 1.5):
        hist.observe(value)
    store.sample(registry, now=102.0)

    rate_points = store.get("c.rate").ring.points()
    assert rate_points == [(102.0, 5.0)]  # 10 increments / 2 s
    assert store.get("h.rate").ring.points() == [(102.0, 2.0)]
    p50 = store.get("h.p50").ring.last()[1]
    assert 0.0 < p50 <= 1.0  # median of {0.5, 0.5, 1.5, 1.5} window
    assert store.get("h.p99") is not None

    # window semantics: an idle interval yields zero rates, not sums
    store.sample(registry, now=104.0)
    assert store.get("c.rate").ring.last() == (104.0, 0.0)


def test_sampler_thread_and_hook():
    registry = MetricsRegistry()
    store = TimeSeriesStore()
    calls = []

    def hook(s, now):
        calls.append(now)
        registry.gauge("hooked").set(len(calls))

    sampler = TimeSeriesSampler(store, registry, interval=0.05, hook=hook)
    sampler.start()
    time.sleep(0.2)
    sampler.stop()
    assert len(calls) >= 2
    assert store.get("hooked") is not None
    assert store.samples >= 2

    # a broken hook must not kill sampling
    def bad_hook(s, now):
        raise RuntimeError("boom")

    sampler2 = TimeSeriesSampler(store, registry, interval=0.05, hook=bad_hook)
    assert sampler2.sample_once() >= 0


# ---------------------------------------------------------------------------
# SLOs
# ---------------------------------------------------------------------------

def test_parse_slo_full_and_defaults():
    slo = parse_slo("lat:service.job.latency_s.p95<=2.5@0.99/120")
    assert (slo.name, slo.series) == ("lat", "service.job.latency_s.p95")
    assert (slo.objective, slo.op) == (2.5, "<=")
    assert (slo.target, slo.window_s) == (0.99, 120.0)
    slo = parse_slo("up:service.cache.hit_rate>=0.5")
    assert (slo.op, slo.target, slo.window_s) == (">=", 0.95, 300.0)
    # round trip
    assert parse_slo(slo.to_spec()) == slo


def test_parse_slo_rejects_garbage():
    for bad in ("nope", "a:b", "a:b<=x", "a:b<=1@2", ""):
        with pytest.raises(ValueError):
            parse_slo(bad)
    with pytest.raises(ValueError):
        SLO("x", "s", 1.0, op="==")
    with pytest.raises(ValueError):
        SLO("x", "s", 1.0, target=0.0)


def test_slo_statuses_over_ring_windows():
    store = TimeSeriesStore()
    slo = SLO("lat", "lat.p95", 1.0, "<=", target=0.9, window_s=100.0)
    now = 1000.0
    assert slo.evaluate(store, now)["status"] == "no_data"

    for i in range(10):
        store.record("lat.p95", 0.5, ts=now - 50 + i)
    verdict = slo.evaluate(store, now)
    assert verdict["status"] == "ok"
    assert verdict["good_fraction"] == 1.0
    assert verdict["burn_rate"] == 0.0

    # one bad point in eleven -> bad_fraction 1/11, budget 0.1, burn
    # ~0.91: budget nearly fully burning, which warns but not breaches
    store.record("lat.p95", 5.0, ts=now - 10)
    verdict = slo.evaluate(store, now)
    assert verdict["status"] == "warn"
    assert verdict["burn_rate"] == pytest.approx((1 / 11) / 0.1, abs=1e-3)

    # majority bad -> breach
    for i in range(8):
        store.record("lat.p95", 9.0, ts=now - 5 + 0.1 * i)
    assert slo.evaluate(store, now)["status"] == "breach"

    # points outside the window are ignored
    old = SLO("lat", "lat.p95", 1.0, "<=", window_s=1.0)
    assert old.evaluate(store, now + 1000)["status"] == "no_data"


def test_default_slos_cover_latency_errors_and_queue():
    names = {slo.name for slo in default_slos()}
    assert names == {"job_latency_p95", "error_rate", "queue_wait_p95"}


def test_telemetry_hub_bounds_trace_registry():
    hub = TelemetryHub(MetricsRegistry(), max_traces=3, max_trace_spans=10)
    for i in range(7):
        tracer = hub.job_tracer(f"job{i}", f"t{i}")
        with tracer.span("s"):
            pass
    assert hub.trace_count() == 3
    assert hub.evicted_traces == 4
    assert hub.get_tracer("job0") is None
    assert hub.get_tracer("job6").trace_id == "t6"
    assert hub.span_count() == 3


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------

def test_metrics_label_rendering_round_trips():
    name = render_name("repro.jobs", {"state": "queued", "zone": "a"})
    assert name == 'repro.jobs{state="queued",zone="a"}'
    assert split_name(name) == ("repro.jobs", 'state="queued",zone="a"')
    assert split_name("plain") == ("plain", None)


def test_prometheus_text_help_type_and_labels():
    registry = MetricsRegistry()
    registry.describe("service.jobs.done", "jobs settled successfully")
    registry.counter("service.jobs.done").inc(3)
    registry.gauge("repro.jobs", labels={"state": "queued"}).set(2)
    registry.gauge("repro.jobs", labels={"state": "running"}).set(1)
    text = prometheus_text(registry)
    assert "# HELP service_jobs_done jobs settled successfully" in text
    assert "# TYPE service_jobs_done counter" in text
    assert "service_jobs_done 3" in text
    assert 'repro_jobs{state="queued"} 2' in text
    assert 'repro_jobs{state="running"} 1' in text
    # one family header even with two labelled series
    assert text.count("# TYPE repro_jobs gauge") == 1


def test_prometheus_histogram_exposition_is_cumulative():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", buckets=[1.0, 2.0])
    for value in (0.5, 1.5, 1.5, 99.0):
        hist.observe(value)
    text = prometheus_text(registry)
    assert 'lat_bucket{le="1"} 1' in text
    assert 'lat_bucket{le="2"} 3' in text
    assert 'lat_bucket{le="+Inf"} 4' in text
    assert text.count("+Inf") == 1  # no duplicate overflow line
    assert "lat_count 4" in text
    assert "# TYPE lat histogram" in text


def test_prometheus_labelled_histogram_merges_le_label():
    registry = MetricsRegistry()
    registry.histogram(
        "dur", buckets=[1.0], labels={"stage": "sta"}
    ).observe(0.5)
    text = prometheus_text(registry)
    assert 'dur_bucket{stage="sta",le="1"} 1' in text
    assert 'dur_sum{stage="sta"}' in text
    assert 'dur_count{stage="sta"} 1' in text


# ---------------------------------------------------------------------------
# Daemon integration: trace isolation, HTTP surfaces, soak
# ---------------------------------------------------------------------------

@pytest.fixture()
def daemon(tmp_path):
    daemon = ServiceDaemon(
        run_dir=str(tmp_path / "svc"),
        workers=2,
        timeseries_interval=0.1,
    )
    yield daemon
    daemon.close(timeout=30.0)


def _validate_perfetto(document):
    """Schema + nesting checks on a Chrome trace-event document."""
    assert set(document) >= {"traceEvents", "displayTimeUnit", "otherData"}
    complete = [e for e in document["traceEvents"] if e.get("ph") == "X"]
    assert complete, "no complete events in trace"
    by_tid = {}
    for event in complete:
        assert set(event) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
        assert event["ts"] >= 0 and event["dur"] >= 0
        by_tid.setdefault(event["tid"], []).append(event)
    # per thread, spans must nest: sorted by (ts, -dur), each event's
    # interval is contained in any still-open ancestor's interval
    for events in by_tid.values():
        events.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for event in events:
            end = event["ts"] + event["dur"]
            while stack and event["ts"] >= stack[-1] - 1e-3:
                stack.pop()
            if stack:
                assert end <= stack[-1] + 1e-3, "overlapping sibling spans"
            stack.append(end)
    return complete


def test_concurrent_jobs_do_not_cross_contaminate(daemon):
    job_a, _ = daemon.submit(JobSpec(design="counter", params={"width": 4}))
    job_b, _ = daemon.submit(JobSpec(design="pipeline3"))
    daemon.queue.wait(job_a.id, timeout=120.0)
    daemon.queue.wait(job_b.id, timeout=120.0)

    status_a = daemon.job_status(job_a.id)
    status_b = daemon.job_status(job_b.id)
    assert status_a["state"] == "done" and status_b["state"] == "done"
    assert status_a["trace_id"] != status_b["trace_id"]

    # result payloads carry their own trace IDs
    assert daemon.job_result(job_a.id)["trace_id"] == status_a["trace_id"]
    assert daemon.job_result(job_b.id)["trace_id"] == status_b["trace_id"]

    # each per-job journal is stamped with exactly its own trace ID
    for job, status in ((job_a, status_a), (job_b, status_b)):
        events = read_journal(daemon.job_journal_path(job.id))
        ids = {e.get("trace_id") for e in events}
        assert ids == {status["trace_id"]}

    # each tracer's spans mention only its own design's stages
    for job, status in ((job_a, status_a), (job_b, status_b)):
        document = daemon.job_trace(job.id)
        assert document["otherData"]["trace_id"] == status["trace_id"]
        for event in document["traceEvents"]:
            if event.get("ph") == "X":
                assert event["args"]["trace_id"] == status["trace_id"]


def test_job_trace_matches_journal_stage_set(daemon):
    job, _ = daemon.submit(JobSpec(design="counter", params={"width": 4}))
    daemon.queue.wait(job.id, timeout=120.0)
    document = daemon.job_trace(job.id)
    complete = _validate_perfetto(document)
    # cold run: every stage executes, so ``stage:`` spans alone cover
    # the journal's stage set (warm runs would add ``cache:`` hits)
    trace_stages = {
        e["name"][len("stage:"):]
        for e in complete
        if e["name"].startswith("stage:")
    }
    journal_stages = {
        e["stage"]
        for e in read_journal(daemon.job_journal_path(job.id))
        if e["event"] == "stage_end"
    }
    assert trace_stages == journal_stages
    assert trace_stages  # the flow has stages


def test_job_trace_errors(daemon):
    with pytest.raises(KeyError):
        daemon.job_trace("ffffffffffff")


def test_telemetry_disabled_daemon_still_works(tmp_path):
    daemon = ServiceDaemon(
        run_dir=str(tmp_path / "svc"), workers=1, telemetry=False
    )
    try:
        job, _ = daemon.submit(JobSpec(design="counter", params={"width": 4}))
        daemon.queue.wait(job.id, timeout=120.0)
        assert daemon.job_status(job.id)["state"] == "done"
        with pytest.raises(LookupError):
            daemon.timeseries_snapshot()
        with pytest.raises(LookupError):
            daemon.job_trace(job.id)
        with pytest.raises(LookupError):
            daemon.dashboard_page()
        assert "slos" not in daemon.health()
    finally:
        daemon.close(timeout=30.0)


def test_http_trace_timeseries_dashboard_round_trip(daemon):
    server = make_server(daemon).start_background()
    try:
        client = ServiceClient(server.url)
        ticket = client.submit({"design": "counter", "params": {"width": 4}})
        client.wait(ticket["id"], timeout=120.0)

        document = client.trace(ticket["id"])
        complete = _validate_perfetto(document)
        assert document["otherData"]["job"] == ticket["id"]
        assert any(e["name"].startswith("stage:") for e in complete)

        time.sleep(0.3)  # let the 0.1 s sampler take a few samples
        series = client.timeseries()
        assert series["samples"] >= 2
        assert series["series"], "no series sampled"
        assert any(
            name.endswith(".rate") for name in series["series"]
        )
        assert 'repro.jobs{state="done"}' in series["series"]

        health = client.health()
        assert "slos" in health
        assert {o["name"] for o in health["slos"]["objectives"]} == {
            "job_latency_p95", "error_rate", "queue_wait_p95",
        }

        html = client.dashboard()
        assert html.lstrip().startswith("<!DOCTYPE html>")
        assert "/timeseries" in html and "sparkline" in html

        with pytest.raises(ServiceClientError) as err:
            client.trace("ffffffffffff")
        assert err.value.status == 404
    finally:
        server.stop()


def test_dashboard_html_is_self_contained():
    html = dashboard_html(poll_ms=1234)
    assert "1234" in html
    # zero external assets: no http(s) fetches outside the API polls
    assert "<script src" not in html and "<link" not in html
    for endpoint in ("/timeseries", "/health", "/jobs", "/metrics"):
        assert endpoint in html


def test_soak_many_jobs_keep_telemetry_memory_flat(tmp_path):
    """>=50 sequential jobs: spans, traces and series stay bounded."""
    daemon = ServiceDaemon(
        run_dir=str(tmp_path / "svc"),
        workers=1,
        timeseries_interval=0.05,
        max_traces=16,
        max_trace_spans=200,
    )
    try:
        span_counts = []
        for i in range(50):
            job, _ = daemon.submit(
                JobSpec(design="counter", params={"width": 4}), reuse=False
            )
            settled = daemon.queue.wait(job.id, timeout=120.0)
            assert settled.state.value == "done"
            span_counts.append(daemon.telemetry.span_count())
        # trace registry bounded: at most max_traces tracers retained
        assert daemon.telemetry.trace_count() <= 16
        assert daemon.telemetry.evicted_traces >= 50 - 16
        # retained spans plateau instead of growing linearly with jobs:
        # once 16 tracers are live, each new job evicts one, so the
        # count stops rising (warm jobs record fewer spans than cold)
        assert span_counts[-1] <= 16 * 200
        assert max(span_counts[-10:]) <= max(span_counts[:20])
        # series memory: every ring respects the store capacity
        snapshot = daemon.timeseries_snapshot()
        assert snapshot["series"]
        for series in snapshot["series"].values():
            assert len(series["points"]) <= snapshot["capacity"]
        # and the SLO verdicts are live
        health = daemon.health()
        statuses = {
            o["status"] for o in health["slos"]["objectives"]
        }
        assert statuses <= {"ok", "warn", "breach", "no_data"}
        assert health["slos"]["status"] in ("ok", "warn", "breach", "no_data")
    finally:
        daemon.close(timeout=30.0)


# ---------------------------------------------------------------------------
# CLI plumbing
# ---------------------------------------------------------------------------

def test_serve_parser_accepts_telemetry_flags():
    from repro.service.cli import build_service_parser

    parser = build_service_parser()
    args = parser.parse_args(
        [
            "serve",
            "--slo", "lat:service.job.latency_s.p95<=2.0@0.99/120",
            "--slo", "err:service.jobs.failed.rate<=0.01",
            "--timeseries-interval", "0.5",
            "--timeseries-capacity", "1200",
            "--max-trace-spans", "999",
            "--no-telemetry",
        ]
    )
    assert len(args.slo) == 2
    assert args.timeseries_interval == 0.5
    assert args.timeseries_capacity == 1200
    assert args.max_trace_spans == 999
    assert args.no_telemetry is True
    parsed = [parse_slo(spec) for spec in args.slo]
    assert parsed[0].window_s == 120.0


def test_trace_verb_parses():
    from repro.cli import SERVICE_COMMANDS as MAIN_COMMANDS
    from repro.service.cli import SERVICE_COMMANDS, build_service_parser

    assert "trace" in SERVICE_COMMANDS
    assert "trace" in MAIN_COMMANDS  # the main CLI routes the verb too
    args = build_service_parser().parse_args(
        ["trace", "abc123", "--out", "t.json"]
    )
    assert args.command == "trace"
    assert args.job_id == "abc123"
    assert args.out == "t.json"
