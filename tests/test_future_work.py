"""Tests for the chapter-6 future-work extensions: SSTA, ECO
calibration and floorplan-constrained delay-element placement."""

import math

import pytest

from repro.desync import Drdesync, eco_calibrate, measure_element_delay
from repro.desync.eco import _extend_element
from repro.designs import counter, figure22_circuit, pipeline3
from repro.liberty import GateChooser, core9_hs
from repro.physical import (
    apply_floorplan_constraints,
    delay_element_proximity,
    place,
    run_backend,
)
from repro.sim import check_flow_equivalence
from repro.sta import (
    StatArrival,
    analyze,
    delay_element_matching,
    ssta_analyze,
    statistical_max,
)


@pytest.fixture(scope="module")
def lib():
    return core9_hs()


# ----------------------------------------------------------------------
# SSTA
# ----------------------------------------------------------------------

def test_stat_arrival_addition():
    arrival = StatArrival(1.0, 0.1, 0.01)
    extended = arrival.plus(2.0, 0.05, 0.02)
    assert extended.mean == pytest.approx(3.0)
    assert extended.global_sens == pytest.approx(0.1 + 2.0 * 0.05)
    assert extended.local_var == pytest.approx(0.01 + (2.0 * 0.02) ** 2)


def test_statistical_max_dominates_both_means():
    a = StatArrival(2.0, 0.2, 0.01)
    b = StatArrival(1.0, 0.1, 0.01)
    m = statistical_max(a, b)
    assert m.mean >= a.mean  # max mean >= each operand's mean
    c = StatArrival(2.0, 0.2, 0.01)
    tied = statistical_max(a, c)
    assert tied.mean >= 2.0  # ties push the mean up


def test_statistical_max_identical_correlated_is_identity():
    a = StatArrival(2.0, 0.3, 0.0)
    m = statistical_max(a, StatArrival(2.0, 0.3, 0.0))
    assert m.mean == pytest.approx(2.0)
    assert m.sigma == pytest.approx(0.3, abs=1e-6)


def test_ssta_mean_tracks_deterministic_sta(lib):
    mod = pipeline3(lib)
    deterministic = analyze(mod, lib).critical_delay
    stat = ssta_analyze(mod, lib)
    assert stat.worst.mean == pytest.approx(deterministic, rel=0.15)
    assert stat.worst.sigma > 0


def test_ssta_sigma_grows_with_variability(lib):
    mod = pipeline3(lib)
    small = ssta_analyze(mod, lib, sigma_global=0.02, sigma_local=0.01)
    big = ssta_analyze(mod, lib, sigma_global=0.15, sigma_local=0.08)
    assert big.worst.sigma > small.worst.sigma * 2


def test_delay_element_matching_correlation_wins(lib):
    """The paper's future-work question, answered: on-die delay elements
    keep near-unity timing yield; uncorrelated ones would not."""
    mod = figure22_circuit(lib)
    result = Drdesync(lib).run(mod)
    rows = delay_element_matching(result, lib)
    assert rows
    for row in rows:
        assert row.yield_correlated > 0.999
        assert row.yield_correlated >= row.yield_uncorrelated
    assert any(row.yield_uncorrelated < 0.995 for row in rows)


# ----------------------------------------------------------------------
# ECO calibration
# ----------------------------------------------------------------------

def test_measure_element_delay_close_to_ladder(lib):
    mod = counter(lib, width=6)
    result = Drdesync(lib).run(mod)
    region, element = next(iter(result.network.delay_elements.items()))
    measured = measure_element_delay(mod, lib, element)
    expected = result.ladder.delay_of(element.length)
    assert measured == pytest.approx(expected, rel=0.25)


def test_eco_extends_after_parasitic_degradation(lib):
    mod = figure22_circuit(lib)
    result = Drdesync(lib).run(mod)
    # fake post-layout extraction that slows one region's cloud a lot
    region = max(
        result.network.region_delays, key=result.network.region_delays.get
    )
    victim_nets = {
        net: 0.30
        for inst_name in result.region_map.regions[region].instances
        if inst_name in mod.instances
        for net in mod.instances[inst_name].pins.values()
    }
    mod.attributes["net_wire_delay"] = victim_nets
    report = eco_calibrate(result, lib)
    assert report.extended >= 1
    change = next(c for c in report.changes if c.region == region)
    assert change.new_length > change.old_length


def test_eco_preserves_flow_equivalence(lib):
    mod = figure22_circuit(lib)
    golden = mod.clone()
    result = Drdesync(lib).run(mod)
    run_backend(mod, lib, sdc=result.sdc, target_utilization=0.90)
    eco_calibrate(result, lib)
    assert mod.check() == []
    report = check_flow_equivalence(
        golden,
        result,
        lib,
        cycles=8,
        stimulus=lambda k: {f"din[{i}]": ((k * 5 + 1) >> i) & 1 for i in range(4)},
    )
    assert report.equivalent, report.mismatches[:3]


def test_eco_extension_is_idempotent_when_matched(lib):
    mod = counter(lib, width=6)
    result = Drdesync(lib).run(mod)
    first = eco_calibrate(result, lib)
    second = eco_calibrate(result, lib)
    assert second.extended == 0


# ----------------------------------------------------------------------
# floorplan constraints for delay elements
# ----------------------------------------------------------------------

def test_proximity_report_and_constraints(lib):
    mod = figure22_circuit(lib)
    result = Drdesync(lib).run(mod)
    placement = place(mod, lib, target_utilization=0.90)
    before = delay_element_proximity(mod, placement, result.network)
    moved = apply_floorplan_constraints(mod, placement, result.network)
    after = delay_element_proximity(mod, placement, result.network)
    assert moved > 0
    assert before.per_region
    assert after.mean_distance <= before.mean_distance
    # constrained cells stay inside the core
    for x, y in placement.locations.values():
        assert 0 <= x <= placement.core_width + 1e-6
        assert 0 <= y <= placement.core_height + 1e-6
