"""Tests for the hot-path performance overhaul.

Covers the three rebuilt layers plus the parallel Monte-Carlo:

- compiled / LUT liberty evaluators vs the AST ``evaluate()`` oracle,
  property-based over random expressions and exhaustive over every
  3-valued input combination;
- the incremental simulator kernel: observational parity (captures,
  toggle counts, event counts) with the reference kernel, single
  clock evaluation per flip-flop update, and no per-event env
  rebuilds;
- ``ConnectivityIndex`` invalidation across every ``Module`` mutator;
- serial-vs-process-pool bit-identity of the variability study.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.designs import figure22_circuit
from repro.engine import parallel_map
from repro.liberty import core9_hs
from repro.liberty.functions import (
    LUT_MAX_INPUTS,
    Const,
    Not,
    Op,
    Var,
    compile_function,
    compile_function_indexed,
    encode_value,
    evaluate,
    expr_inputs,
    expr_to_text,
    parse_function,
    reference_function,
)
from repro.netlist import (
    ConnectivityIndex,
    Module,
    PortDirection,
    driver_of,
    sinks_of,
)
from repro.sim import Simulator
from repro.sim.testbench import SyncTestbench, initialize_registers
from repro.variability import VariabilityModel, run_study

LIB = core9_hs()


# ----------------------------------------------------------------------
# compiled evaluators vs the AST oracle
# ----------------------------------------------------------------------

_NAMES = ("a", "b", "c", "d")


def _exprs(depth):
    if depth == 0:
        return st.one_of(
            st.sampled_from([Var(n) for n in _NAMES]),
            st.sampled_from([Const(0), Const(1)]),
        )
    sub = _exprs(depth - 1)
    return st.one_of(
        sub,
        st.builds(Not, sub),
        st.builds(
            lambda kind, args: Op(kind, tuple(args)),
            st.sampled_from(["and", "or", "xor"]),
            st.lists(sub, min_size=2, max_size=3),
        ),
    )


@settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(expr=_exprs(3))
def test_compiled_evaluators_match_ast_oracle(expr):
    """Dict-env LUT/codegen tier == oracle on ALL 3-valued combos."""
    text = expr_to_text(expr)
    parsed = parse_function(text)
    names = tuple(sorted(expr_inputs(parsed)))
    compiled = compile_function(text)
    oracle = reference_function(text)
    for combo in itertools.product((0, 1, None), repeat=len(names)):
        values = dict(zip(names, combo))
        expected = evaluate(parsed, values)
        assert compiled(values) == expected
        assert oracle(values) == expected


@settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(expr=_exprs(3))
def test_indexed_evaluators_match_ast_oracle(expr):
    """Slot-list LUT/codegen tier == oracle, including missing slots."""
    text = expr_to_text(expr)
    parsed = parse_function(text)
    names = tuple(sorted(expr_inputs(parsed)))
    # slot layout with an extra unused slot, shuffled order
    slots = ("zz",) + names
    fn = compile_function_indexed(text, slots)
    for combo in itertools.product((0, 1, None), repeat=len(names)):
        env = [2] * len(slots)
        for name, value in zip(names, combo):
            env[slots.index(name)] = encode_value(value)
        assert fn(env) == evaluate(parsed, dict(zip(names, combo)))


def test_codegen_path_beyond_lut_width():
    """>LUT_MAX_INPUTS inputs takes the codegen path; spot-check it."""
    width = LUT_MAX_INPUTS + 1
    names = [f"i{k}" for k in range(width)]
    text = " * ".join(names)  # wide AND
    compiled = compile_function(text)
    assert compiled.kind == "codegen"
    indexed = compile_function_indexed(text, tuple(names))
    assert indexed.kind == "codegen"
    parsed = parse_function(text)
    cases = [
        dict.fromkeys(names, 1),
        dict.fromkeys(names, 0),
        {**dict.fromkeys(names, 1), names[3]: 0},
        {**dict.fromkeys(names, 1), names[5]: None},
        {**dict.fromkeys(names, None), names[0]: 0},
    ]
    for values in cases:
        expected = evaluate(parsed, values)
        assert compiled(values) == expected
        env = [encode_value(values[n]) for n in names]
        assert indexed(env) == expected


def test_unconnected_slot_reads_as_x():
    """A pin absent from the slot layout is permanently unknown."""
    fn = compile_function_indexed("a * b", ("a",))
    assert fn([1]) is None  # b unconnected: 1 * X = X
    assert fn([0]) == 0  # 0 * X = 0


# ----------------------------------------------------------------------
# ConnectivityIndex invalidation across every Module mutator
# ----------------------------------------------------------------------


class DictCellInfo:
    def __init__(self, table):
        self._table = table

    def pin_direction(self, cell, pin):
        return self._table[cell][pin]


INFO = DictCellInfo(
    {
        "AND2": {
            "A": PortDirection.INPUT,
            "B": PortDirection.INPUT,
            "Z": PortDirection.OUTPUT,
        },
        "INV": {"A": PortDirection.INPUT, "Z": PortDirection.OUTPUT},
    }
)


def _chain_module():
    mod = Module("m")
    mod.add_port("a", PortDirection.INPUT)
    mod.add_port("b", PortDirection.INPUT)
    mod.add_port("y", PortDirection.OUTPUT)
    mod.add_instance("u1", "AND2", {"A": "a", "B": "b", "Z": "n1"})
    mod.add_instance("u2", "INV", {"A": "n1", "Z": "y"})
    return mod


def _assert_index_fresh(index, mod, nets):
    """Every cached answer must equal a from-scratch core scan."""
    for net in nets:
        assert index.driver_of(net) == driver_of(mod, net, INFO)
        assert index.sinks_of(net) == sinks_of(mod, net, INFO)


def test_index_matches_core_functions_and_caches():
    mod = _chain_module()
    index = ConnectivityIndex(mod, INFO)
    _assert_index_fresh(index, mod, ["a", "b", "n1", "y", "missing"])
    before = index.misses
    _assert_index_fresh(index, mod, ["a", "b", "n1", "y", "missing"])
    assert index.misses == before  # second pass is all cache hits
    assert index.hits > 0


def test_index_invalidation_connect():
    mod = _chain_module()
    index = ConnectivityIndex(mod, INFO)
    assert index.sinks_of("a") == sinks_of(mod, "a", INFO)
    mod.add_instance("u3", "INV", {"A": "a", "Z": "n2"})
    _assert_index_fresh(index, mod, ["a", "n2"])


def test_index_invalidation_disconnect():
    mod = _chain_module()
    index = ConnectivityIndex(mod, INFO)
    assert index.driver_of("n1") is not None
    mod.disconnect("u1", "Z")
    assert index.driver_of("n1") is None
    _assert_index_fresh(index, mod, ["n1"])


def test_index_invalidation_remove_instance():
    mod = _chain_module()
    index = ConnectivityIndex(mod, INFO)
    assert index.sinks_of("n1") != []
    mod.remove_instance("u2")
    assert index.sinks_of("n1") == []
    _assert_index_fresh(index, mod, ["a", "b", "n1", "y"])


def test_index_invalidation_merge_nets():
    mod = _chain_module()
    index = ConnectivityIndex(mod, INFO)
    index.connections_of("n1")
    mod.add_instance("u3", "INV", {"A": "n2", "Z": "n3"})
    mod.merge_nets("n1", "n2")
    assert index.sinks_of("n1") == sinks_of(mod, "n1", INFO)
    assert {ref.instance for ref in index.sinks_of("n1")} == {"u2", "u3"}
    assert index.driver_of("n2") is None  # net gone
    _assert_index_fresh(index, mod, ["n1", "n3"])


def test_index_invalidation_rename_net():
    mod = _chain_module()
    index = ConnectivityIndex(mod, INFO)
    assert index.driver_of("n1") is not None
    mod.rename_net("n1", "renamed")
    assert index.driver_of("n1") is None
    assert index.driver_of("renamed") == driver_of(mod, "renamed", INFO)
    _assert_index_fresh(index, mod, ["renamed", "a", "y"])


def test_index_invalidation_remove_net_and_manual():
    mod = _chain_module()
    index = ConnectivityIndex(mod, INFO)
    mod.add_net("dangling")
    index.connections_of("dangling")
    mod.remove_net("dangling")
    assert index.driver_of("dangling") is None
    # manual Net.connections rewrites must be announced explicitly
    stamp = mod.mutation_count
    mod.invalidate_indexes()
    assert mod.mutation_count == stamp + 1
    _assert_index_fresh(index, mod, ["n1"])


def test_index_invalidation_add_port():
    mod = _chain_module()
    index = ConnectivityIndex(mod, INFO)
    index.connections_of("a")
    mod.add_port("extra", PortDirection.INPUT)
    assert index.driver_of("extra") == driver_of(mod, "extra", INFO)


def test_simplify_names_invalidates_index():
    from repro.netlist import simplify_names

    mod = Module("m")
    mod.add_port("a", PortDirection.INPUT)
    mod.add_instance("\\weird.name ", "INV", {"A": "a", "Z": "n1"})
    index = ConnectivityIndex(mod, INFO)
    assert index.driver_of("n1").instance == "\\weird.name "
    assert simplify_names(mod) >= 1
    fresh = driver_of(mod, "n1", INFO)
    assert index.driver_of("n1") == fresh
    assert fresh.instance != "\\weird.name "


# ----------------------------------------------------------------------
# simulator kernel parity and the hot-path fixes
# ----------------------------------------------------------------------


def _run_figure22(kernel):
    module = figure22_circuit(LIB)
    sim = Simulator(module, LIB, kernel=kernel)
    initialize_registers(sim, 0)
    bench = SyncTestbench(sim, clock="clk", period=10.0)
    bench.run_cycles(
        12,
        lambda k: {f"din[{i}]": ((k * 7 + 3) >> i) & 1 for i in range(4)},
    )
    return sim


def test_kernel_parity_on_figure22():
    """Compiled kernel is observationally identical to the reference."""
    ref = _run_figure22("reference")
    cmp_ = _run_figure22("compiled")
    assert [(e.instance, e.value) for e in ref.captures] == [
        (e.instance, e.value) for e in cmp_.captures
    ]
    assert dict(ref.toggle_counts) == dict(cmp_.toggle_counts)
    assert ref.event_count == cmp_.event_count
    assert ref.net_values == cmp_.net_values


def test_unknown_kernel_rejected():
    from repro.sim.simulator import SimulationError

    with pytest.raises(SimulationError):
        Simulator(figure22_circuit(LIB), LIB, kernel="turbo")


def test_ff_clock_evaluated_once_per_update():
    """Regression: the FF machine used to call seq_clock up to 3x."""
    module = figure22_circuit(LIB)
    sim = Simulator(module, LIB, kernel="compiled")
    model = next(m for m in sim._models.values() if m.is_ff)
    calls = {"n": 0}
    original = model.seq_clock

    def counting_clock(env):
        calls["n"] += 1
        return original(env)

    model.seq_clock = counting_clock
    model.seq_clock_s = None  # force the function path
    sim._evaluate(model)
    assert calls["n"] == 1


def test_compiled_kernel_never_rebuilds_pin_env(monkeypatch):
    """Regression: _evaluate + _drive_outputs each rebuilt the env."""
    calls = {"n": 0}
    original = Simulator._pin_env

    def counting_pin_env(self, model):
        calls["n"] += 1
        return original(self, model)

    monkeypatch.setattr(Simulator, "_pin_env", counting_pin_env)
    _run_figure22("compiled")
    assert calls["n"] == 0
    _run_figure22("reference")
    assert calls["n"] > 0  # the reference path still rebuilds dicts


def test_force_net_applies_to_compiled_kernel():
    module = figure22_circuit(LIB)
    sim = Simulator(module, LIB, kernel="compiled")
    initialize_registers(sim, 0)
    # pin an FF output net high while the circuit keeps running
    model = next(m for m in sim._models.values() if m.is_ff)
    net = model.pin_nets["Q"]
    sim.force_net(net, 1)
    assert sim.value(net) == 1
    bench = SyncTestbench(sim, clock="clk", period=10.0)
    bench.run_cycles(4, lambda k: {f"din[{i}]": k & 1 for i in range(4)})
    assert sim.value(net) == 1  # still pinned after clocked activity


# ----------------------------------------------------------------------
# parallel Monte-Carlo
# ----------------------------------------------------------------------


def test_sample_chips_serial_pool_bit_identical():
    model = VariabilityModel()
    serial = model.sample_chips(64, seed=11, instances=["u1", "u2"], jobs=1)
    pooled = model.sample_chips(64, seed=11, instances=["u1", "u2"], jobs=4)
    assert [
        (c.inter_die, c.tracking_mismatch, c.instance_factors) for c in serial
    ] == [
        (c.inter_die, c.tracking_mismatch, c.instance_factors) for c in pooled
    ]


def test_run_study_serial_pool_bit_identical():
    a = run_study(2.0, n_chips=300, margin=0.1, seed=5, jobs=1)
    b = run_study(2.0, n_chips=300, margin=0.1, seed=5, jobs=2)
    assert a.sync_period == b.sync_period
    assert a.desync_periods == b.desync_periods


def test_chip_samples_independent_of_population_size():
    """Per-chip seeds: chip i is the same die in a 10- or 100-chip run."""
    model = VariabilityModel()
    small = model.sample_chips(10, seed=42)
    large = model.sample_chips(100, seed=42)
    assert [c.inter_die for c in small] == [
        c.inter_die for c in large[:10]
    ]


def _square(n):
    return n * n


def test_parallel_map_preserves_order():
    assert parallel_map(_square, range(40), jobs=4) == [
        n * n for n in range(40)
    ]


def test_parallel_map_falls_back_on_unpicklable_fn():
    # a lambda cannot cross the process boundary: serial fallback
    assert parallel_map(lambda n: n + 1, range(10), jobs=4) == list(
        range(1, 11)
    )
