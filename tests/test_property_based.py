"""Property-based tests (hypothesis) on the core data structures.

These pin down invariants rather than examples: netlist consistency
under random edit sequences, boolean-function evaluation against a
brute-force reference, Quine-McCluskey cover correctness on random
truth tables, C-element rendezvous behaviour under random input walks,
protocol safety under random firing orders, and the delay-ladder /
selection monotonicity the flow relies on.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.desync import build_cmuller, choose_length, mux_selection_delay
from repro.desync.delays import DelayElementError, DelayLadder
from repro.liberty import GateChooser, core9_hs
from repro.liberty.functions import (
    Const,
    Not,
    Op,
    Var,
    evaluate,
    expr_to_text,
    parse_function,
)
from repro.netlist import Module, PortDirection, parse_verilog, write_verilog
from repro.sim import Simulator
from repro.stg import (
    NON_OVERLAPPING,
    SEMI_DECOUPLED,
    SIMPLE,
    Stg,
    StgError,
)
from repro.stg.synthesis import cubes_to_expr, minimal_cover

LIB = core9_hs()

# ----------------------------------------------------------------------
# netlist invariants
# ----------------------------------------------------------------------

edit_ops = st.lists(
    st.tuples(
        st.sampled_from(["connect", "disconnect", "add", "remove"]),
        st.integers(0, 7),
        st.integers(0, 7),
    ),
    min_size=1,
    max_size=30,
)


@given(edit_ops)
@settings(max_examples=60, deadline=None)
def test_netlist_stays_consistent_under_edits(ops):
    module = Module("m")
    module.add_port("p0", PortDirection.INPUT)
    for index, (op, a, b) in enumerate(ops):
        inst_name = f"u{a}"
        if op == "add" and inst_name not in module.instances:
            module.add_instance(inst_name, "INVX1", {"A": f"n{a}", "Z": f"n{b}"})
        elif op == "remove":
            module.remove_instance(inst_name)
        elif op == "connect" and inst_name in module.instances:
            module.connect(inst_name, "A", f"n{b}")
        elif op == "disconnect" and inst_name in module.instances:
            module.disconnect(inst_name, "A")
    assert module.check() == []


@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(0, 5)),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=40, deadline=None)
def test_verilog_round_trip_random_netlists(gates):
    module = Module("m")
    module.add_port("a", PortDirection.INPUT, msb=5, lsb=0)
    module.add_port("y", PortDirection.OUTPUT)
    for index, (x, y, z) in enumerate(gates):
        module.add_instance(
            f"g{index}",
            "NAND2X1",
            {"A": f"a[{x}]", "B": f"w{y}", "Z": f"w{index}_{z}"},
        )
    from repro.netlist import Netlist

    netlist = Netlist()
    netlist.add_module(module)
    again = parse_verilog(write_verilog(netlist)).top
    assert set(again.instances) == set(module.instances)
    for name, inst in module.instances.items():
        assert again.instances[name].pins == inst.pins
    assert again.check() == []


# ----------------------------------------------------------------------
# boolean functions
# ----------------------------------------------------------------------

VARS = ["A", "B", "C", "D"]


def expr_strategy():
    leaves = st.sampled_from(
        [Var(v) for v in VARS] + [Const(0), Const(1)]
    )

    def extend(children):
        return st.one_of(
            st.builds(Not, children),
            st.builds(
                lambda kind, args: Op(kind, tuple(args)),
                st.sampled_from(["and", "or", "xor"]),
                st.lists(children, min_size=2, max_size=3),
            ),
        )

    return st.recursive(leaves, extend, max_leaves=12)


def reference_eval(expr, env):
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        return env[expr.name]
    if isinstance(expr, Not):
        return 1 - reference_eval(expr.arg, env)
    values = [reference_eval(arg, env) for arg in expr.args]
    if expr.kind == "and":
        return int(all(values))
    if expr.kind == "or":
        return int(any(values))
    acc = 0
    for value in values:
        acc ^= value
    return acc


@given(expr_strategy())
@settings(max_examples=150, deadline=None)
def test_function_text_round_trip_preserves_semantics(expr):
    text = expr_to_text(expr)
    parsed = parse_function(text)
    for bits in itertools.product((0, 1), repeat=len(VARS)):
        env = dict(zip(VARS, bits))
        assert evaluate(parsed, env) == reference_eval(expr, env)


@given(expr_strategy())
@settings(max_examples=100, deadline=None)
def test_three_valued_eval_is_conservative(expr):
    """If the 3-valued result is known, it matches every completion."""
    env = {"A": 1, "B": None, "C": 0, "D": None}
    result = evaluate(expr, env)
    if result is None:
        return
    for b_val in (0, 1):
        for d_val in (0, 1):
            complete = {"A": 1, "B": b_val, "C": 0, "D": d_val}
            assert reference_eval(expr, complete) == result


# ----------------------------------------------------------------------
# Quine-McCluskey
# ----------------------------------------------------------------------

@given(
    st.integers(2, 4),
    st.data(),
)
@settings(max_examples=80, deadline=None)
def test_minimal_cover_matches_truth_table(width, data):
    universe = list(range(1 << width))
    on_set = set(data.draw(st.sets(st.sampled_from(universe))))
    dc_candidates = [m for m in universe if m not in on_set]
    dc_set = set(
        data.draw(st.sets(st.sampled_from(dc_candidates)))
        if dc_candidates
        else set()
    )
    cover = minimal_cover(on_set, dc_set, width)
    variables = [f"x{i}" for i in range(width)]
    expr = cubes_to_expr(cover, variables)
    for minterm in universe:
        env = {
            variables[i]: (minterm >> (width - 1 - i)) & 1
            for i in range(width)
        }
        value = evaluate(expr, env)
        if minterm in on_set:
            assert value == 1
        elif minterm not in dc_set:
            assert value == 0


# ----------------------------------------------------------------------
# C-element rendezvous invariant
# ----------------------------------------------------------------------

@given(
    st.integers(2, 5),
    st.lists(st.tuples(st.integers(0, 4), st.booleans()), max_size=25),
)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_cmuller_rendezvous_invariant(n_inputs, walk):
    module = Module("cm")
    inputs = []
    for index in range(n_inputs):
        module.add_port(f"i{index}", PortDirection.INPUT)
        inputs.append(f"i{index}")
    module.add_port("z", PortDirection.OUTPUT)
    build_cmuller(module, inputs, "z", GateChooser(LIB))
    simulator = Simulator(module, LIB)
    state = [0] * n_inputs
    for name in inputs:
        simulator.set_input(name, 0)
    simulator.settle(max_time=100)
    expected = 0
    for index, value in walk:
        state[index % n_inputs] = int(value)
        simulator.set_input(inputs[index % n_inputs], int(value))
        simulator.settle(max_time=100)
        if all(state):
            expected = 1
        elif not any(state):
            expected = 0
        assert simulator.value("z") == expected


# ----------------------------------------------------------------------
# protocols: random firing walks never break safety/consistency
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "protocol", [NON_OVERLAPPING, SIMPLE, SEMI_DECOUPLED], ids=lambda p: p.name
)
@given(choices=st.lists(st.integers(0, 10), max_size=40))
@settings(max_examples=40, deadline=None)
def test_protocol_random_walks_stay_safe(protocol, choices):
    stg = protocol.pairwise_stg()
    state = stg.initial_state()
    signals = stg.signals
    for choice in choices:
        enabled = stg.enabled(state)
        assert enabled, "good protocols never deadlock"
        transition_index = enabled[choice % len(enabled)]
        transition = stg.transitions[transition_index]
        _, values = state
        position = signals.index(transition.signal)
        # consistency: a rising edge only from 0, a falling only from 1
        assert values[position] == (0 if transition.polarity else 1)
        state = stg.fire(state, transition_index)  # raises if unsafe


# ----------------------------------------------------------------------
# delay ladders and selections
# ----------------------------------------------------------------------

@given(
    st.lists(
        st.floats(min_value=0.01, max_value=0.2, allow_nan=False),
        min_size=3,
        max_size=60,
    ),
    st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_choose_length_is_minimal_and_sufficient(steps, target, margin):
    delays = list(itertools.accumulate(steps))
    ladder = DelayLadder("lib", "worst", delays)
    try:
        length = choose_length(ladder, target, margin)
    except DelayElementError:
        assert delays[-1] < target * (1 + margin)
        return
    assert ladder.delay_of(length) >= target * (1 + margin)
    if length > 1:
        assert ladder.delay_of(length - 1) < target * (1 + margin)


@given(
    st.integers(2, 120),
    st.integers(2, 8),
)
@settings(max_examples=100, deadline=None)
def test_mux_selection_delay_monotone(length, taps):
    delays = [0.05 * (i + 1) for i in range(length)]
    ladder = DelayLadder("lib", "worst", delays)
    series = [
        mux_selection_delay(ladder, length, taps, sel)
        for sel in range(taps)
    ]
    assert all(b >= a for a, b in zip(series, series[1:]))
    assert series[-1] == ladder.delay_of(length)
