"""End-to-end drdesync tests: grouping, substitution, DDG, network, SDC."""

import pytest

from repro.desync import (
    DesyncOptions,
    Drdesync,
    ENV,
    build_ddg,
    fanin_fanout,
    group_regions,
    manual_regions,
    single_region,
    validate_independence,
)
from repro.designs.simple import (
    counter,
    figure22_circuit,
    gated_counter,
    pipeline3,
    scan_pipeline,
    shift_register,
)
from repro.liberty import build_gatefile, core9_hs
from repro.netlist import parse_verilog, write_verilog
from repro.sta import SdcFile, analyze


@pytest.fixture(scope="module")
def lib():
    return core9_hs()


@pytest.fixture(scope="module")
def tool(lib):
    return Drdesync(lib)


# ----------------------------------------------------------------------
# grouping (section 3.2.2)
# ----------------------------------------------------------------------

def test_figure22_grouping_matches_paper(lib):
    """The Figure 2.2 circuit must decompose into its five regions."""
    mod = figure22_circuit(lib)
    gatefile = build_gatefile(lib)
    regions = group_regions(mod, gatefile)
    with_ffs = [
        name
        for name, region in regions.regions.items()
        if region.sequential_instances(mod, gatefile)
    ]
    assert len(with_ffs) == 5
    assert validate_independence(mod, gatefile, regions) == []


def test_input_registers_go_to_group0(lib):
    """Step 3: flip-flops registering circuit inputs form Group 0."""
    mod = pipeline3(lib)
    gatefile = build_gatefile(lib)
    regions = group_regions(mod, gatefile)
    assert "G0" in regions.regions
    group0 = regions.regions["G0"]
    seq = group0.sequential_instances(mod, gatefile)
    assert seq and all(name.startswith("r_sa") for name in seq)


def test_ff_to_ff_chains_join_driver_group(lib):
    """Step 2 heuristic: shift-register stages follow their driver."""
    mod = shift_register(lib, depth=5)
    gatefile = build_gatefile(lib)
    regions = group_regions(mod, gatefile)
    names = {regions.region_of(f"r_s{i}") for i in range(5)}
    assert len(names) == 1


def test_bus_heuristic_merges_bus_drivers(lib):
    """Figure 3.6: cells driving bits of one bus merge into one group."""
    text = """
    module m (input a, input b, input s, input clk, output [1:0] q);
      wire [1:0] muxed;
      MUX2X1 m0 (.A(a), .B(b), .S(s), .Z(muxed[0]));
      MUX2X1 m1 (.A(b), .B(a), .S(s), .Z(muxed[1]));
      DFFX1 r0 (.D(muxed[0]), .CK(clk), .Q(q[0]));
      DFFX1 r1 (.D(muxed[1]), .CK(clk), .Q(q[1]));
    endmodule
    """
    mod = parse_verilog(text).top
    gatefile = build_gatefile(core9_hs())
    merged = group_regions(mod, gatefile, use_bus_heuristic=True)
    assert merged.region_of("m0") == merged.region_of("m1")
    split = group_regions(mod, gatefile, use_bus_heuristic=False)
    assert split.region_of("m0") != split.region_of("m1")


def test_false_path_nets_are_ignored(lib):
    """A global net (e.g. a mode signal) can be marked as a false path."""
    text = """
    module m (input a, input b, input mode, input clk, output [1:0] q);
      wire mode_n, n0, n1;
      INVX1 um (.A(mode), .Z(mode_n));
      AND2X1 u0 (.A(a), .B(mode_n), .Z(n0));
      AND2X1 u1 (.A(b), .B(mode_n), .Z(n1));
      DFFX1 r0 (.D(n0), .CK(clk), .Q(q[0]));
      DFFX1 r1 (.D(n1), .CK(clk), .Q(q[1]));
    endmodule
    """
    mod = parse_verilog(text).top
    gatefile = build_gatefile(core9_hs())
    merged = group_regions(mod, gatefile)
    assert merged.region_of("u0") == merged.region_of("u1")
    split = group_regions(mod, gatefile, false_path_nets=["mode_n"])
    assert split.region_of("u0") != split.region_of("u1")


def test_manual_and_single_region_modes(lib):
    mod = pipeline3(lib)
    manual = manual_regions(mod, {name: "A" for name in mod.instances})
    assert set(manual.regions) == {"A"}
    single = single_region(mod)
    assert len(single.regions) == 1


# ----------------------------------------------------------------------
# data dependency graph (section 3.2.4)
# ----------------------------------------------------------------------

def test_ddg_matches_figure26(lib, tool):
    mod = figure22_circuit(lib)
    result = tool.run(mod)
    edges = set(result.ddg.edges())
    # Figure 2.6 structure: G1 -> {G2, G3}, G2 -> G4, {G3, G4} -> G5
    region_edges = {
        (a, b) for a, b in edges if a != ENV and b != ENV
    }
    out_degrees = {}
    for a, b in region_edges:
        out_degrees.setdefault(a, set()).add(b)
    fanout_sizes = sorted(len(v) for v in out_degrees.values())
    assert 2 in fanout_sizes  # one region feeds two others (G1)
    # one region has fanin 2 (G5)
    in_degrees = {}
    for a, b in region_edges:
        in_degrees.setdefault(b, set()).add(a)
    assert any(len(v) == 2 for v in in_degrees.values())


def test_counter_has_self_edge(lib, tool):
    mod = counter(lib)
    result = tool.run(mod)
    self_edges = [(a, b) for a, b in result.ddg.edges() if a == b]
    assert len(self_edges) == 1


def test_fanin_fanout_counts(lib, tool):
    mod = figure22_circuit(lib)
    result = tool.run(mod)
    for region in result.region_map.regions:
        fanin, fanout = fanin_fanout(result.ddg, region)
        assert fanin >= 0 and fanout >= 0


# ----------------------------------------------------------------------
# full tool runs
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "build",
    [counter, pipeline3, figure22_circuit, shift_register, scan_pipeline,
     gated_counter],
    ids=lambda f: f.__name__,
)
def test_tool_produces_consistent_netlist(lib, tool, build):
    mod = build(lib)
    result = tool.run(mod)
    assert mod.check() == []
    assert result.substitution.replaced > 0
    # no flip-flops remain
    gatefile = result.gatefile
    for inst in mod.instances.values():
        if inst.cell in gatefile.cells:
            assert not gatefile.is_flip_flop(inst.cell), inst.name
    # the clock port is gone
    assert "clk" not in mod.ports
    assert "rst" in mod.ports


def test_controllers_one_pair_per_sequential_region(lib, tool):
    mod = figure22_circuit(lib)
    result = tool.run(mod)
    roles = {}
    for (region, role) in result.network.controllers:
        roles.setdefault(region, set()).add(role)
    assert all(r == {"master", "slave"} for r in roles.values())
    assert len(roles) == 5


def test_delay_elements_cover_region_delay(lib, tool):
    mod = figure22_circuit(lib)
    result = tool.run(mod)
    for region, element in result.network.delay_elements.items():
        target = result.network.region_delays[region]
        if target > 0:
            assert result.ladder.delay_of(element.length) >= target


def test_sdc_contents(lib, tool):
    mod = figure22_circuit(lib)
    result = tool.run(mod)
    sdc = SdcFile.parse(result.export_sdc())
    clock_names = {c.name for c in sdc.clocks()}
    assert clock_names == {"ClkM", "ClkS"}
    master, slave = sdc.clocks()
    assert master.period == slave.period
    assert master.source_kind == "pins"
    assert sdc.size_only_cells()
    assert sdc.disables()


def test_sta_on_desynchronized_netlist_is_cycle_free(lib, tool):
    """With the generated disables, no arbitrary loop cuts are needed."""
    mod = figure22_circuit(lib)
    result = tool.run(mod)
    report = analyze(mod, lib, disables=result.sta_disables())
    assert report.broken_edge_count == 0
    without = analyze(mod, lib)
    assert without.broken_edge_count > 0  # the handshake loops exist


def test_exports_are_parseable(lib, tool):
    mod = pipeline3(lib)
    result = tool.run(mod)
    verilog = result.export_verilog()
    again = parse_verilog(verilog)
    assert len(again.top.instances) == len(mod.instances)
    blif = result.export_blif()
    assert ".model" in blif and ".gate" in blif


def test_mux_taps_option_creates_selection_ports(lib, tool):
    mod = pipeline3(lib)
    result = tool.run(mod, DesyncOptions(delay_mux_taps=8))
    dsel_ports = [p for p in mod.ports if p.startswith("dsel_")]
    assert dsel_ports
    for element in result.network.delay_elements.values():
        if element.taps:
            assert len(element.taps) <= 8


def test_arm_style_single_region_run(lib, tool):
    mod = scan_pipeline(lib)
    result = tool.run(mod, DesyncOptions(grouping="single"))
    assert len(result.region_map) == 1
    assert len(result.network.controllers) == 2


def test_summary_fields(lib, tool):
    mod = counter(lib)
    result = tool.run(mod)
    summary = result.summary()
    assert summary["flip_flops_replaced"] == 8
    assert summary["controllers"] == 2
    assert summary["delay_elements"] >= 1
