"""Tests for :mod:`repro.obs` -- tracing, metrics, exporters, logging --
plus the journal robustness fixes that ride along with it."""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cli import build_argument_parser, main as cli_main, resolve_log_level
from repro.designs import figure22_circuit
from repro.engine.executor import FlowEngine
from repro.engine.graph import FlowGraph, Stage
from repro.engine.journal import RunJournal, read_journal
from repro.engine.report import engine_stats
from repro.liberty import core9_hs
from repro.netlist import Netlist, save_verilog
from repro.obs import (
    NULL_SPAN,
    Histogram,
    MetricsRegistry,
    Tracer,
    aggregate_spans,
    chrome_trace_events,
    metrics,
    phase_times,
    summary_report,
    trace,
    write_chrome_trace,
    write_metrics,
)


@pytest.fixture(autouse=True)
def _reset_globals():
    yield
    trace.reset_tracer()
    metrics.reset_registry()


@pytest.fixture(scope="module")
def lib():
    return core9_hs()


# -- tracer ------------------------------------------------------------


def test_nested_spans_parent_depth_path():
    tracer = Tracer()
    with tracer.span("outer", kind="test") as outer:
        with tracer.span("inner") as inner:
            inner.set("k", 1)
    assert inner.parent is outer
    assert inner.depth == 1 and outer.depth == 0
    assert inner.path == "outer/inner"
    assert inner.attrs == {"k": 1}
    assert outer.duration >= inner.duration >= 0.0
    # completion order: inner finishes first
    assert [s.name for s in tracer.finished()] == ["inner", "outer"]
    assert tracer.roots() == [outer]


def test_disabled_tracer_is_noop():
    tracer = Tracer(enabled=False)
    span = tracer.span("anything", x=1)
    assert span is NULL_SPAN
    with span as s:
        s.set("ignored", True)
    assert len(tracer) == 0


def test_module_level_span_uses_active_tracer():
    # default process-wide tracer is disabled
    assert not trace.enabled()
    assert trace.span("ignored") is NULL_SPAN

    tracer = trace.set_tracer(Tracer())
    with trace.span("a"):
        with trace.span("b"):
            pass
    assert [s.name for s in tracer.finished()] == ["b", "a"]
    trace.reset_tracer()
    assert trace.span("after-reset") is NULL_SPAN
    assert len(tracer) == 2  # old tracer untouched


def test_span_records_exceptions_and_unwinds():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("boom"):
            raise ValueError("no")
    (span,) = tracer.finished()
    assert span.attrs["error"] == "ValueError: no"
    # the stack unwound: a new span is a root again
    with tracer.span("next"):
        pass
    assert tracer.finished()[-1].depth == 0


def test_spans_across_threads_are_thread_local():
    tracer = trace.set_tracer(Tracer())

    def work(i):
        with trace.span(f"job{i}"):
            with trace.span("inner"):
                return threading.get_ident()

    with tracer.span("main-root"):
        with ThreadPoolExecutor(max_workers=2) as pool:
            idents = list(pool.map(work, range(4)))

    jobs = [s for s in tracer.finished() if s.name.startswith("job")]
    inners = [s for s in tracer.finished() if s.name == "inner"]
    assert len(jobs) == 4 and len(inners) == 4
    # worker spans do NOT adopt the main thread's open span as parent
    assert all(s.parent is None for s in jobs)
    assert all(s.parent in jobs for s in inners)
    assert {s.thread_id for s in jobs} == set(idents)


def test_tracer_mirrors_spans_into_journal():
    journal = RunJournal()
    tracer = Tracer(journal=journal)
    with tracer.span("stage:x", graph="g"):
        pass
    events = [e for e in journal.events if e["event"] == "span"]
    assert len(events) == 1
    assert events[0]["name"] == "stage:x"
    assert events[0]["path"] == "stage:x"
    assert events[0]["attrs"] == {"graph": "g"}


# -- metrics -----------------------------------------------------------


def test_counter_and_gauge():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.counter("c").inc(4)
    registry.gauge("g").set(2.5)
    snap = registry.snapshot()
    assert snap["counters"]["c"] == 5
    assert snap["gauges"]["g"] == 2.5


def test_histogram_bucket_edges_are_inclusive():
    h = Histogram("h", buckets=(1, 2, 5))
    for value in (0, 1, 1.5, 2, 3, 5, 6, 100):
        h.observe(value)
    snap = h.snapshot()
    # inclusive upper bounds: 1 -> "<=1", 2 -> "<=2", 5 -> "<=5"
    assert snap["buckets"] == {"<=1": 2, "<=2": 2, "<=5": 2, ">5": 2}
    assert snap["count"] == 8
    assert snap["min"] == 0 and snap["max"] == 100
    assert snap["sum"] == pytest.approx(118.5)
    assert snap["mean"] == pytest.approx(118.5 / 8)


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError):
        Histogram("bad", buckets=(5, 1))


def test_registry_get_or_create_and_kind_mismatch():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")
    with pytest.raises(TypeError):
        registry.histogram("x")


def test_disabled_registry_returns_null_instruments():
    assert not metrics.enabled()
    metrics.counter("nope").inc()
    metrics.gauge("nope").set(1)
    metrics.histogram("nope").observe(1)
    assert len(metrics.get_registry()) == 0

    registry = metrics.set_registry(MetricsRegistry())
    metrics.counter("yes").inc()
    assert registry.snapshot()["counters"]["yes"] == 1
    metrics.reset_registry()
    metrics.counter("nope").inc()
    assert len(registry) == 1  # old registry untouched


# -- exporters ---------------------------------------------------------


def test_chrome_trace_event_schema(tmp_path):
    tracer = Tracer()
    with tracer.span("outer", module="dlx"):
        with tracer.span("inner"):
            pass
    path = tmp_path / "trace.json"
    document = write_chrome_trace(str(path), tracer)
    on_disk = json.loads(path.read_text())
    assert on_disk == document
    events = document["traceEvents"]
    x = [e for e in events if e["ph"] == "X"]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(x) == 2 and len(meta) == 1
    outer = next(e for e in x if e["name"] == "outer")
    inner = next(e for e in x if e["name"] == "inner")
    for event in x:
        assert event["cat"] == "repro"
        assert isinstance(event["ts"], float) and isinstance(event["dur"], float)
        assert event["pid"] > 0 and event["tid"] > 0
    # microsecond nesting: inner inside outer on the same tid
    assert inner["tid"] == outer["tid"]
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 0.001
    assert outer["args"] == {"module": "dlx"}
    assert meta[0]["name"] == "thread_name"


def test_chrome_trace_args_are_json_safe():
    tracer = Tracer()
    with tracer.span("s", obj=object(), n=3, flag=True, none=None):
        pass
    (event,) = [e for e in chrome_trace_events(tracer) if e["ph"] == "X"]
    assert event["args"]["n"] == 3
    assert event["args"]["flag"] is True
    assert event["args"]["none"] is None
    assert isinstance(event["args"]["obj"], str)
    json.dumps(event)  # must not raise


def test_aggregate_and_summary_report():
    tracer = Tracer()
    for _ in range(3):
        with tracer.span("stage:a"):
            with tracer.span("sub"):
                pass
    agg = aggregate_spans(tracer)
    assert agg["stage:a"]["count"] == 3
    assert agg["stage:a/sub"]["count"] == 3
    assert agg["stage:a/sub"]["depth"] == 1
    # self time excludes the child's share
    assert agg["stage:a"]["self_s"] <= agg["stage:a"]["total_s"]
    report = summary_report(tracer)
    assert "stage:a" in report and "sub" in report
    assert summary_report(Tracer()) == "(no spans recorded)"


def test_phase_times_from_tracer_and_file(tmp_path):
    tracer = Tracer()
    with tracer.span("stage:group"):
        pass
    with tracer.span("stage:ddg"):
        pass
    with tracer.span("not-a-stage"):
        pass
    live = phase_times(tracer)
    assert set(live) == {"group", "ddg"}
    path = tmp_path / "t.json"
    write_chrome_trace(str(path), tracer)
    from_file = phase_times(trace_file=str(path))
    assert set(from_file) == {"group", "ddg"}
    for stage in live:
        assert from_file[stage] == pytest.approx(live[stage], abs=1e-4)


def test_write_metrics_with_extra(tmp_path):
    registry = MetricsRegistry()
    registry.counter("c").inc(2)
    path = tmp_path / "m.json"
    write_metrics(str(path), registry, extra={"design": "dlx"})
    snap = json.loads(path.read_text())
    assert snap["counters"]["c"] == 2
    assert snap["design"] == "dlx"


# -- engine integration ------------------------------------------------


def _two_stage_graph():
    graph = FlowGraph("obs-test")
    graph.add_stages(
        [
            Stage(
                name="double",
                func=lambda a: a["x"] * 2,
                inputs=("x",),
                outputs=("y",),
            ),
            Stage(
                name="square",
                func=lambda a: a["y"] ** 2,
                inputs=("y",),
                outputs=("z",),
            ),
        ]
    )
    return graph


def test_engine_stages_become_spans():
    tracer = trace.set_tracer(Tracer())
    registry = metrics.set_registry(MetricsRegistry())
    engine = FlowEngine()
    result = engine.run(_two_stage_graph(), initial={"x": 3}, label="obs")
    assert result.artifacts["z"] == 36
    names = [s.name for s in tracer.finished()]
    assert "stage:double" in names and "stage:square" in names
    run_span = next(s for s in tracer.finished() if s.name == "run:obs")
    assert run_span.attrs["stages"] == 2
    # serial stages nest under the run span
    stage_span = next(s for s in tracer.finished() if s.name == "stage:double")
    assert stage_span.parent is run_span
    assert registry.snapshot()["counters"]["engine.runs"] == 1


def test_engine_parallel_run_traces_worker_threads(lib):
    tracer = trace.set_tracer(Tracer())
    from repro.desync.tool import Drdesync

    engine = FlowEngine(jobs=2)
    tool = Drdesync(lib, engine=engine)
    tool.run(figure22_circuit(lib))
    stage_spans = [
        s for s in tracer.finished() if s.name.startswith("stage:")
    ]
    assert len(stage_spans) >= 5
    # in-stage instrumentation nests under its engine stage
    grouping = next(s for s in tracer.finished() if s.name == "grouping")
    assert grouping.parent is not None
    assert grouping.parent.name == "stage:group"
    assert grouping.parent.thread_id == grouping.thread_id


def test_engine_cache_metrics(tmp_path):
    from repro.engine.cache import ArtifactCache

    registry = metrics.set_registry(MetricsRegistry())
    cache = ArtifactCache(str(tmp_path / "cache"))
    engine = FlowEngine(cache=cache)
    engine.run(_two_stage_graph(), initial={"x": 3}, label="cold")
    engine.run(_two_stage_graph(), initial={"x": 3}, label="warm")
    counters = registry.snapshot()["counters"]
    assert counters["engine.cache.misses"] == 2
    assert counters["engine.cache.hits"] == 2


def test_engine_stats_include_trace_and_metrics():
    tracer = trace.set_tracer(Tracer())
    registry = metrics.set_registry(MetricsRegistry())
    engine = FlowEngine()
    result = engine.run(_two_stage_graph(), initial={"x": 2}, label="stats")
    stats = engine_stats([result], tracer=tracer, registry=registry)
    assert "run:stats" in stats["trace"]
    assert stats["trace"]["run:stats/stage:double"]["count"] == 1
    assert stats["metrics"]["counters"]["engine.runs"] == 1


# -- journal robustness (satellites) -----------------------------------


def test_journal_record_after_close_keeps_memory_events(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = RunJournal(str(path))
    journal.record("before", n=1)
    journal.close()
    journal.record("after", n=2)  # must not raise
    assert [e["event"] for e in journal.events] == ["before", "after"]
    assert [e["event"] for e in read_journal(str(path))] == ["before"]
    journal.close()  # idempotent


def test_read_journal_tolerates_truncated_tail(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = RunJournal(str(path))
    journal.record("one")
    journal.record("two")
    journal.close()
    text = path.read_text()
    path.write_text(text + '{"event": "tru')  # simulated crash mid-write
    events = read_journal(str(path))
    assert [e["event"] for e in events] == ["one", "two"]


# -- CLI ---------------------------------------------------------------


def test_resolve_log_level_precedence():
    parser = build_argument_parser()
    assert resolve_log_level(parser.parse_args(["x.v"])) == "info"
    assert resolve_log_level(parser.parse_args(["x.v", "--quiet"])) == "warning"
    assert resolve_log_level(parser.parse_args(["x.v", "-v"])) == "debug"
    assert (
        resolve_log_level(
            parser.parse_args(["x.v", "-v", "--log-level", "error"])
        )
        == "error"
    )


def test_cli_trace_and_metrics_end_to_end(lib, tmp_path):
    netlist = Netlist()
    netlist.add_module(figure22_circuit(lib))
    src = tmp_path / "design.v"
    save_verilog(netlist, str(src))
    trace_file = tmp_path / "trace.json"
    metrics_file = tmp_path / "metrics.json"
    journal_file = tmp_path / "run.jsonl"
    code = cli_main(
        [
            str(src),
            "-o", str(tmp_path / "out.v"),
            "--no-cache",
            "--quiet",
            "--journal", str(journal_file),
            "--trace", str(trace_file),
            "--metrics", str(metrics_file),
        ]
    )
    assert code == 0
    # the CLI restored the disabled defaults
    assert not trace.enabled() and not metrics.enabled()

    document = json.loads(trace_file.read_text())
    names = {
        e["name"] for e in document["traceEvents"] if e["ph"] == "X"
    }
    assert {"stage:group", "stage:network", "grouping"} <= names
    assert phase_times(trace_file=str(trace_file))["group"] > 0

    snapshot = json.loads(metrics_file.read_text())
    assert snapshot["gauges"]["desync.grouping.regions"] >= 1
    assert snapshot["counters"]["desync.ffsub.replaced"] > 0
    assert snapshot["histograms"]["desync.region.size"]["count"] >= 1
    assert "desync.summary.cells" in snapshot["gauges"]

    # spans were mirrored into the run journal
    events = read_journal(str(journal_file))
    assert any(e["event"] == "span" for e in events)


def test_cli_quiet_suppresses_summary(lib, tmp_path, capsys):
    netlist = Netlist()
    netlist.add_module(figure22_circuit(lib))
    src = tmp_path / "design.v"
    save_verilog(netlist, str(src))
    assert cli_main([str(src), "--no-cache", "--quiet"]) == 0
    assert "desynchronized" not in capsys.readouterr().out
    assert cli_main([str(src), "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "desynchronized" in out and "engine:" in out
