"""Tests for the :mod:`repro.engine` flow-orchestration subsystem.

Covers the cache-key semantics the engine promises (any option field,
library variant or netlist edit invalidates exactly the affected
stages), parallel-vs-serial result equivalence, timeout/retry
robustness, graceful degradation of a failing P&R stage, and the JSONL
run journal.
"""

import time

import pytest

from repro.desync import DesyncOptions, Drdesync
from repro.designs import figure22_circuit, pipeline3
from repro.engine import (
    ArtifactCache,
    FlowEngine,
    FlowError,
    FlowGraph,
    FlowGraphError,
    RunJournal,
    Stage,
    StageStatus,
    read_journal,
    render_report,
    engine_stats,
    stable_hash,
)
from repro.liberty import core9_hs, core9_ll

DESYNC_STAGES = (
    "import", "group", "ffsub", "ddg", "delays", "network", "constraints"
)


@pytest.fixture(scope="module")
def lib():
    return core9_hs()


def make_engine(tmp_path, jobs=1, journal=None):
    return FlowEngine(
        cache=ArtifactCache(str(tmp_path / "cache")),
        journal=journal,
        jobs=jobs,
    )


def run_desync(lib, engine, module, options=None):
    tool = Drdesync(lib, engine=engine)
    return tool.run(module, options or DesyncOptions())


def cache_states(engine):
    """stage name -> 'hit' | 'miss' | 'off' for the engine's last run."""
    run = engine.results[-1]
    return {name: record.cache for name, record in run.records.items()}


# ---------------------------------------------------------------------------
# stable_hash


def test_stable_hash_dict_order_invariant():
    assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})
    assert stable_hash({"a": 1}) != stable_hash({"a": 2})


def test_stable_hash_module_clone_equal(lib):
    module = pipeline3(lib)
    assert stable_hash(module) == stable_hash(module.clone())


def test_stable_hash_module_mutation_differs(lib):
    module = pipeline3(lib)
    before = stable_hash(module)
    instance = next(iter(module.instances.values()))
    instance.cell = "BUFX2" if instance.cell != "BUFX2" else "BUFX1"
    assert stable_hash(module) != before


# ---------------------------------------------------------------------------
# cache semantics


def test_identical_rerun_hits_every_stage(lib, tmp_path):
    engine = make_engine(tmp_path)
    module = pipeline3(lib)
    first = run_desync(lib, engine, module.clone())
    assert set(cache_states(engine).values()) == {"miss"}

    second = run_desync(lib, engine, module.clone())
    states = cache_states(engine)
    assert set(states) == set(DESYNC_STAGES)
    assert set(states.values()) == {"hit"}
    assert second.summary() == first.summary()
    assert second.export_verilog() == first.export_verilog()


def test_option_change_invalidates_only_affected_stages(lib, tmp_path):
    engine = make_engine(tmp_path)
    module = pipeline3(lib)
    run_desync(lib, engine, module.clone(), DesyncOptions(delay_margin=0.10))
    run_desync(lib, engine, module.clone(), DesyncOptions(delay_margin=0.25))
    states = cache_states(engine)
    # delay_margin only parameterises the network and constraint stages
    assert states["network"] == "miss"
    assert states["constraints"] == "miss"
    for name in ("import", "group", "ffsub", "ddg", "delays"):
        assert states[name] == "hit", f"{name} should not depend on margin"


def test_grouping_change_invalidates_downstream(lib, tmp_path):
    engine = make_engine(tmp_path)
    module = figure22_circuit(lib)
    run_desync(lib, engine, module.clone(), DesyncOptions(grouping="auto"))
    run_desync(lib, engine, module.clone(), DesyncOptions(grouping="single"))
    states = cache_states(engine)
    assert states["import"] == "hit"
    assert states["delays"] == "hit"  # ladder depends on library only
    for name in ("group", "ffsub", "ddg", "network", "constraints"):
        assert states[name] == "miss"


def test_library_variant_invalidates(lib, tmp_path):
    engine = make_engine(tmp_path)
    module = pipeline3(lib)
    run_desync(lib, engine, module.clone())
    run_desync(core9_ll(), engine, pipeline3(core9_ll()).clone())
    states = cache_states(engine)
    assert states["import"] == "miss"
    assert states["delays"] == "miss"


def test_netlist_edit_invalidates_from_import(lib, tmp_path):
    engine = make_engine(tmp_path)
    module = pipeline3(lib)
    run_desync(lib, engine, module.clone())

    edited = module.clone()
    instance = next(
        i for i in edited.instances.values() if i.cell == "XOR2X1"
    )
    instance.cell = "XOR2X2"  # one gate resized
    run_desync(lib, engine, edited)
    states = cache_states(engine)
    assert states["import"] == "miss"
    assert states["group"] == "miss"
    assert states["delays"] == "hit"  # ladder characterisation unaffected


def test_no_cache_engine_records_off(lib, tmp_path):
    engine = FlowEngine()  # no cache at all
    run_desync(lib, engine, pipeline3(lib))
    assert set(cache_states(engine).values()) == {"off"}


# ---------------------------------------------------------------------------
# executors


def test_parallel_matches_serial(lib, tmp_path):
    module = figure22_circuit(lib)
    serial = run_desync(lib, FlowEngine(jobs=1), module.clone())
    parallel = run_desync(lib, FlowEngine(jobs=4), module.clone())
    assert parallel.summary() == serial.summary()
    assert parallel.export_verilog() == serial.export_verilog()
    assert parallel.export_sdc() == serial.export_sdc()


def test_stage_timeout_skips_dependents():
    graph = FlowGraph("slow")
    graph.add(Stage(
        "sleep",
        lambda _: time.sleep(5.0),
        outputs=("a",),
        timeout=0.05,
        cacheable=False,
    ))
    graph.add(Stage(
        "after", lambda d: d["a"], inputs=("a",), outputs=("b",),
        cacheable=False,
    ))
    engine = FlowEngine(jobs=2)
    result = engine.run(graph)
    assert result.records["sleep"].status is StageStatus.TIMEOUT
    assert result.records["after"].status is StageStatus.SKIPPED
    assert not result.ok
    with pytest.raises(FlowError, match="timeout"):
        result.raise_first_failure()


def test_flaky_stage_retries_until_success():
    attempts = {"n": 0}

    def flaky(_):
        attempts["n"] += 1
        if attempts["n"] < 2:
            raise RuntimeError("transient")
        return attempts["n"]

    graph = FlowGraph("flaky")
    graph.add(Stage(
        "flaky", flaky, outputs=("x",), retries=1, cacheable=False
    ))
    result = FlowEngine().run(graph)
    assert result.ok
    assert result.records["flaky"].attempts == 2
    assert result.artifacts["x"] == 2


def test_failed_stage_keeps_partial_artifacts():
    def boom(_):
        raise RuntimeError("backend fell over")

    graph = FlowGraph("partial")
    graph.add(Stage("ok", lambda _: 1, outputs=("a",), cacheable=False))
    graph.add(Stage(
        "boom", boom, inputs=("a",), outputs=("b",), cacheable=False
    ))
    result = FlowEngine().run(graph)
    assert result.artifacts["a"] == 1
    assert "b" not in result.artifacts
    assert result.records["boom"].status is StageStatus.FAILED
    assert "backend fell over" in result.records["boom"].error_text
    # tolerated failure: caller may allow it explicitly
    result.raise_first_failure(allow=("boom",))
    with pytest.raises(RuntimeError):
        result.raise_first_failure()


def test_pnr_failure_degrades_gracefully(lib, tmp_path, monkeypatch):
    from repro.flow import implementation as impl

    def failing_backend(*args, **kwargs):
        raise RuntimeError("P&R blew up")

    monkeypatch.setattr(impl, "run_backend", failing_backend)
    journal = RunJournal(str(tmp_path / "run.jsonl"))
    engine = FlowEngine(journal=journal)
    result = impl.implement_synchronous(
        figure22_circuit(lib), lib, engine=engine
    )
    journal.close()
    # post-synthesis report survives, layout is marked failed
    assert result.post_synthesis.cells > 0
    assert result.post_layout is None
    assert "pnr" in result.failures
    assert "P&R blew up" in result.failures["pnr"]
    events = read_journal(str(tmp_path / "run.jsonl"))
    failed = [
        e for e in events
        if e["event"] == "stage_end" and e["status"] == "failed"
    ]
    assert any(e["stage"].endswith("pnr") for e in failed)


# ---------------------------------------------------------------------------
# graph validation


def test_graph_rejects_duplicate_producer():
    graph = FlowGraph("dup")
    graph.add(Stage("a", lambda _: 1, outputs=("x",)))
    with pytest.raises(FlowGraphError):
        graph.add(Stage("b", lambda _: 2, outputs=("x",)))


def test_graph_rejects_cycles():
    graph = FlowGraph("cycle")
    graph.add(Stage("a", lambda d: 1, inputs=("y",), outputs=("x",)))
    graph.add(Stage("b", lambda d: 2, inputs=("x",), outputs=("y",)))
    with pytest.raises(FlowGraphError):
        graph.validate({})


def test_graph_requires_initial_artifacts():
    graph = FlowGraph("init")
    graph.add(Stage("a", lambda d: 1, inputs=("seed",), outputs=("x",)))
    with pytest.raises(FlowGraphError):
        FlowEngine().run(graph, initial={})


# ---------------------------------------------------------------------------
# journal and reports


def test_journal_round_trip(lib, tmp_path):
    path = str(tmp_path / "run.jsonl")
    journal = RunJournal(path)
    engine = FlowEngine(journal=journal)
    run_desync(lib, engine, pipeline3(lib))
    journal.close()
    events = read_journal(path)
    kinds = [e["event"] for e in events]
    assert kinds[0] == "run_start" and kinds[-1] == "run_end"
    stages = [e["stage"] for e in events if e["event"] == "stage_end"]
    assert set(stages) == set(DESYNC_STAGES)
    assert all("ts" in e for e in events)


def test_render_report_and_stats(lib, tmp_path):
    engine = make_engine(tmp_path)
    run_desync(lib, engine, pipeline3(lib))
    report = render_report(engine.results[-1])
    assert "import" in report and "network" in report
    stats = engine_stats(engine.results, engine.cache)
    assert stats["runs"] == 1
    assert set(stats["stages"]) == set(DESYNC_STAGES)
    assert stats["cache"]["misses"] == len(DESYNC_STAGES)
