"""Unit tests for desynchronization components: C-elements, controllers,
delay elements, gatefile-driven substitution rules."""

import pytest

from repro.desync import (
    C_RESET_CELL,
    C_SET_CELL,
    build_cmuller,
    characterize_ladder,
    build_delay_element,
    choose_length,
    cmuller_truth_table,
    controller_stg,
    ensure_controller_cells,
    mux_selection_delay,
    place_controller,
)
from repro.desync.cmuller import CMullerError
from repro.desync.delays import DelayElementError
from repro.liberty import GateChooser, core9_hs
from repro.netlist import Module, PortDirection
from repro.sim import Simulator
from repro.stg import explore, is_live


@pytest.fixture(scope="module")
def lib():
    library = core9_hs()
    ensure_controller_cells(library)
    return library


@pytest.fixture(scope="module")
def ladder(lib):
    return characterize_ladder(lib, "worst", max_length=60)


# ----------------------------------------------------------------------
# C-Muller elements (Table 2.1)
# ----------------------------------------------------------------------

def simulate_cmuller(lib, n_inputs, sequence):
    """Drive an n-input C element; returns output after each vector."""
    mod = Module("cm")
    inputs = []
    for i in range(n_inputs):
        mod.add_port(f"i{i}", PortDirection.INPUT)
        inputs.append(f"i{i}")
    mod.add_port("z", PortDirection.OUTPUT)
    build_cmuller(mod, inputs, "z", GateChooser(lib))
    sim = Simulator(mod, lib)
    outputs = []
    for vector in sequence:
        for name, value in zip(inputs, vector):
            sim.set_input(name, value)
        sim.settle(max_time=50)
        outputs.append(sim.value("z"))
    return outputs


@pytest.mark.parametrize("n", [2, 3, 4, 5, 10])
def test_cmuller_truth_table(lib, n):
    """Table 2.1: all 0s -> 0, all 1s -> 1, other -> unchanged."""
    all0 = tuple([0] * n)
    all1 = tuple([1] * n)
    mixed = tuple([1] + [0] * (n - 1))
    outputs = simulate_cmuller(lib, n, [all0, all1, mixed, all0, mixed])
    assert outputs[0] == 0
    assert outputs[1] == 1
    assert outputs[2] == 1  # unchanged from 1
    assert outputs[3] == 0
    assert outputs[4] == 0  # unchanged from 0


def test_cmuller_with_reset(lib):
    mod = Module("cmr")
    for name in ("a", "b", "rst"):
        mod.add_port(name, PortDirection.INPUT)
    mod.add_port("z", PortDirection.OUTPUT)
    build_cmuller(mod, ["a", "b"], "z", GateChooser(lib), reset="rst")
    sim = Simulator(mod, lib)
    sim.set_input("rst", 0)
    sim.set_input("a", 1)
    sim.set_input("b", 1)
    sim.settle(max_time=50)
    assert sim.value("z") == 1
    sim.set_input("rst", 1)
    sim.settle(max_time=50)
    assert sim.value("z") == 0


def test_cmuller_rejects_bad_inputs(lib):
    mod = Module("cm_bad")
    mod.add_port("a", PortDirection.INPUT)
    with pytest.raises(CMullerError):
        build_cmuller(mod, ["a"], "z", GateChooser(lib))
    mod.add_port("b", PortDirection.INPUT)
    with pytest.raises(CMullerError):
        build_cmuller(mod, ["a", "a"], "z", GateChooser(lib))


def test_cmuller_truth_table_data():
    rows = cmuller_truth_table()
    assert rows[0]["output"] == 0
    assert rows[1]["output"] == 1
    assert rows[2]["output"] == "unchanged"


# ----------------------------------------------------------------------
# controllers
# ----------------------------------------------------------------------

def test_controller_cells_registered(lib):
    assert C_RESET_CELL in lib and C_SET_CELL in lib
    reset_cell = lib.cell(C_RESET_CELL)
    assert reset_cell.dont_touch
    assert set(reset_cell.pins) == {"A", "B", "RST", "Z"}


def test_controller_c_element_behaviour(lib):
    """CBR: Z = C(A, !B) with reset; verify set/hold/reset by simulation."""
    mod = Module("c")
    for name in ("a", "b", "rst"):
        mod.add_port(name, PortDirection.INPUT)
    mod.add_port("z", PortDirection.OUTPUT)
    mod.add_instance("u", C_RESET_CELL, {"A": "a", "B": "b", "RST": "rst", "Z": "z"})
    sim = Simulator(mod, lib)
    sim.set_input("rst", 1)
    sim.set_input("a", 0)
    sim.set_input("b", 0)
    sim.settle()
    assert sim.value("z") == 0
    sim.set_input("rst", 0)
    sim.settle()
    assert sim.value("z") == 0
    sim.set_input("a", 1)  # A=1, B=0 -> rise
    sim.settle()
    assert sim.value("z") == 1
    sim.set_input("b", 1)  # A=1, B=1 -> hold
    sim.settle()
    assert sim.value("z") == 1
    sim.set_input("a", 0)  # A=0, B=1 -> fall
    sim.settle()
    assert sim.value("z") == 0


def test_controller_set_variant_resets_high(lib):
    mod = Module("cs")
    for name in ("a", "b", "rst"):
        mod.add_port(name, PortDirection.INPUT)
    mod.add_port("z", PortDirection.OUTPUT)
    mod.add_instance("u", C_SET_CELL, {"A": "a", "B": "b", "RST": "rst", "Z": "z"})
    sim = Simulator(mod, lib)
    sim.set_input("rst", 1)
    sim.set_input("a", 0)
    sim.set_input("b", 1)
    sim.settle()
    assert sim.value("z") == 1
    sim.set_input("rst", 0)  # A=0, B=1 -> falling condition met
    sim.settle()
    assert sim.value("z") == 0


def test_controller_stg_is_live():
    graph = explore(controller_stg())
    assert is_live(graph)
    assert graph.state_count > 4


def test_place_controller_creates_gates(lib):
    mod = Module("m")
    mod.add_port("rst", PortDirection.INPUT)
    ctrl = place_controller(
        mod, lib, "G1", "master", "ri", "ao", "g", "rst"
    )
    assert len(ctrl.gate_names) == 5  # x, y, 2 pulse buffers, enable gate
    for gate in ctrl.gate_names:
        assert gate in mod.instances
        assert mod.instances[gate].attributes["size_only"]
    # master x element is the set-high flavour (reset-primed)
    assert mod.instances[f"{ctrl.name}_x"].cell == C_SET_CELL
    # master enable gate ORs in reset (transparent during reset)
    from repro.desync.controllers import PULSE_GATE_CELL

    assert mod.instances[f"{ctrl.name}_g"].cell == PULSE_GATE_CELL
    slave = place_controller(mod, lib, "G1", "slave", "ri2", "ao2", "g2", "rst")
    assert mod.instances[f"{slave.name}_x"].cell == C_RESET_CELL
    assert mod.instances[f"{slave.name}_g"].cell == "ANDN2X1"
    assert ctrl.ai_net == ctrl.x_net
    assert ctrl.ro_net == ctrl.y_net


# ----------------------------------------------------------------------
# delay elements
# ----------------------------------------------------------------------

def test_ladder_is_monotonic(ladder):
    assert ladder.max_length == 60
    for shorter, longer in zip(ladder.rise_delays, ladder.rise_delays[1:]):
        assert longer > shorter


def test_choose_length_covers_target_with_margin(ladder):
    target = ladder.rise_delays[9]  # delay of a 10-level chain
    length = choose_length(ladder, target, margin=0.10)
    assert ladder.delay_of(length) >= target * 1.10
    assert ladder.delay_of(length - 1) < target * 1.10


def test_choose_length_too_long_raises(ladder):
    with pytest.raises(DelayElementError):
        choose_length(ladder, ladder.rise_delays[-1] * 2.0)


def _edge_times(sim, net):
    """Attach a watcher recording (time, value) transitions of ``net``."""
    log = []
    sim.watch_nets(
        lambda t, n, v: log.append((t, v)) if n == net else None
    )
    return log


def test_delay_element_is_asymmetric(lib):
    """Figure 2.9: slow rise (full chain), fast fall (one AND level)."""
    mod = Module("d")
    mod.add_port("a", PortDirection.INPUT)
    mod.add_port("z", PortDirection.OUTPUT)
    build_delay_element(mod, GateChooser(lib), "G1", "a", "z", length=12)
    sim = Simulator(mod, lib)
    log = _edge_times(sim, "z")
    sim.set_input("a", 0)
    sim.settle()
    log.clear()
    rise_start = sim.now
    sim.set_input("a", 1)
    sim.settle()
    (rise_at, rise_val), = log
    assert rise_val == 1
    log.clear()
    fall_start = sim.now
    sim.set_input("a", 0)
    sim.settle()
    (fall_at, fall_val), = log
    assert fall_val == 0
    rise_time = rise_at - rise_start
    fall_time = fall_at - fall_start
    assert rise_time > 4 * fall_time


def test_muxed_delay_element_selection(lib, ladder):
    mod = Module("dm")
    mod.add_port("a", PortDirection.INPUT)
    mod.add_port("z", PortDirection.OUTPUT)
    element = build_delay_element(
        mod, GateChooser(lib), "G1", "a", "z", length=32, mux_taps=8
    )
    assert len(element.taps) == 8
    assert element.select_nets == [f"dsel_G1[{i}]" for i in range(3)]
    assert "dsel_G1" in mod.ports
    # model: the highest selection is the longest delay (Figure 5.3)
    delays = [
        mux_selection_delay(ladder, 32, 8, sel) for sel in range(8)
    ]
    assert delays == sorted(delays)
    assert delays[-1] == ladder.delay_of(32)


def test_muxed_delay_element_simulates(lib):
    mod = Module("dm2")
    mod.add_port("a", PortDirection.INPUT)
    mod.add_port("z", PortDirection.OUTPUT)
    build_delay_element(
        mod, GateChooser(lib), "G1", "a", "z", length=16, mux_taps=4
    )
    sim = Simulator(mod, lib)
    log = _edge_times(sim, "z")
    times = {}
    for selection in (0, 3):
        for bit in range(2):
            sim.set_input(f"dsel_G1[{bit}]", (selection >> bit) & 1)
        sim.set_input("a", 0)
        sim.settle()
        log.clear()
        start = sim.now
        sim.set_input("a", 1)
        sim.settle()
        assert sim.value("z") == 1
        rise_events = [t for t, v in log if v == 1]
        times[selection] = rise_events[-1] - start
    assert times[3] > times[0]  # higher selection = longer chain
