"""Tests for the desync-as-a-service subsystem (repro.service).

Covers the satellite contracts too: the job queue's ordering /
cancellation / timeout semantics, job-key dedupe with cross-job cache
sharing, the HTTP round trip through ``service.client``, graceful
drain, failure isolation, ``ArtifactCache`` eviction + locking,
``parallel_map`` item-indexed errors + backpressure, and the
``RunJournal`` parent-directory fix.
"""

import json
import os
import threading
import time

import pytest

from repro.engine import (
    ArtifactCache,
    PoolItemError,
    RunJournal,
    parallel_map,
    read_journal,
)
from repro.service import (
    JobError,
    JobQueue,
    JobSpec,
    JobState,
    QueueClosed,
    QueueFull,
    ServiceClient,
    ServiceClientError,
    ServiceDaemon,
    job_key,
    make_server,
    options_from_dict,
    options_to_dict,
)
from repro.service.jobs import resolve_module


@pytest.fixture(scope="module")
def hs_library():
    from repro.liberty import core9_hs

    return core9_hs()


# ---------------------------------------------------------------------------
# JobQueue semantics
# ---------------------------------------------------------------------------

def test_queue_runs_jobs_and_reports_states():
    queue = JobQueue(workers=2)
    job = queue.submit(lambda: 41 + 1, job_id="a")
    settled = queue.wait("a", timeout=5.0)
    assert settled is job
    assert job.state is JobState.DONE
    assert job.result == 42
    assert job.wall_time is not None
    queue.shutdown(timeout=5.0)


def test_queue_priority_ordering():
    """With one worker blocked, later-but-higher-priority jobs run first."""
    queue = JobQueue(workers=1)
    release = threading.Event()
    order = []

    queue.submit(lambda: release.wait(5.0), job_id="blocker")
    time.sleep(0.05)  # let the worker pick up the blocker
    for name, priority in (("low", 0), ("high", 10), ("mid", 5)):
        queue.submit(
            lambda n=name: order.append(n), job_id=name, priority=priority
        )
    release.set()
    for name in ("low", "high", "mid"):
        queue.wait(name, timeout=5.0)
    assert order == ["high", "mid", "low"]
    queue.shutdown(timeout=5.0)


def test_queue_cancellation_of_queued_job():
    queue = JobQueue(workers=1)
    release = threading.Event()
    queue.submit(lambda: release.wait(5.0), job_id="blocker")
    time.sleep(0.05)
    ran = []
    queue.submit(lambda: ran.append(1), job_id="victim")
    assert queue.cancel("victim") is True
    release.set()
    job = queue.wait("victim", timeout=5.0)
    assert job.state is JobState.CANCELLED
    queue.shutdown(timeout=5.0)
    assert ran == []  # the cancelled body never executed


def test_queue_cancel_running_job_only_flags_it():
    queue = JobQueue(workers=1)
    release = threading.Event()
    queue.submit(lambda: release.wait(5.0), job_id="running")
    time.sleep(0.05)
    assert queue.cancel("running") is False
    job = queue.get("running")
    assert job.cancel_requested and job.state is JobState.RUNNING
    release.set()
    assert queue.wait("running", timeout=5.0).state is JobState.DONE
    queue.shutdown(timeout=5.0)


def test_queue_per_job_timeout():
    queue = JobQueue(workers=1)
    queue.submit(lambda: time.sleep(3.0), job_id="slow", timeout=0.1)
    job = queue.wait("slow", timeout=5.0)
    assert job.state is JobState.FAILED
    assert "timeout" in job.error
    # the worker is free again despite the abandoned thread
    queue.submit(lambda: "ok", job_id="next")
    assert queue.wait("next", timeout=5.0).result == "ok"
    queue.shutdown(timeout=5.0)


def test_queue_crash_isolation():
    queue = JobQueue(workers=1)

    def boom():
        raise ValueError("poison")

    queue.submit(boom, job_id="bad")
    job = queue.wait("bad", timeout=5.0)
    assert job.state is JobState.FAILED
    assert "poison" in job.error
    queue.submit(lambda: "alive", job_id="good")
    assert queue.wait("good", timeout=5.0).result == "alive"
    queue.shutdown(timeout=5.0)


def test_queue_max_pending_backpressure():
    queue = JobQueue(workers=1, max_pending=2)
    release = threading.Event()
    queue.submit(lambda: release.wait(5.0), job_id="blocker")
    time.sleep(0.05)
    queue.submit(lambda: None, job_id="q1")
    queue.submit(lambda: None, job_id="q2")
    with pytest.raises(QueueFull):
        queue.submit(lambda: None, job_id="q3")
    release.set()
    queue.shutdown(timeout=5.0)


def test_queue_drain_rejects_new_work():
    queue = JobQueue(workers=1)
    queue.submit(lambda: time.sleep(0.1), job_id="inflight")
    assert queue.drain(timeout=5.0) is True
    assert queue.get("inflight").state is JobState.DONE
    with pytest.raises(QueueClosed):
        queue.submit(lambda: None, job_id="late")
    queue.shutdown(timeout=5.0)


# ---------------------------------------------------------------------------
# Job specs and keys
# ---------------------------------------------------------------------------

def small_spec(**over):
    kwargs = dict(design="counter", params={"width": 4})
    kwargs.update(over)
    return JobSpec(**kwargs)


def test_job_spec_round_trips_through_json():
    spec = small_spec(
        priority=3,
        options=options_from_dict({"grouping": "single"}),
    )
    payload = json.loads(json.dumps(spec.to_dict()))
    back = JobSpec.from_dict(payload)
    assert back.design == "counter"
    assert back.params == {"width": 4}
    assert back.options.grouping == "single"
    assert back.priority == 3


def test_job_spec_validation():
    with pytest.raises(JobError):
        JobSpec().validate()  # neither design nor verilog
    with pytest.raises(JobError):
        JobSpec(design="nope").validate()
    with pytest.raises(JobError):
        JobSpec(design="counter", verilog="module m; endmodule").validate()
    with pytest.raises(JobError):
        JobSpec.from_dict({"design": "counter", "bogus": 1})


def test_options_dict_round_trip_only_serialises_non_defaults():
    options = options_from_dict({"delay_margin": 0.25})
    assert options_to_dict(options) == {"delay_margin": 0.25}
    assert options_to_dict(options_from_dict({})) == {}


def test_job_key_ignores_scheduling_knobs(hs_library):
    base = job_key(small_spec(), hs_library)
    assert job_key(small_spec(priority=9, timeout=1.0), hs_library) == base
    assert job_key(small_spec(params={"width": 5}), hs_library) != base
    assert (
        job_key(
            small_spec(options=options_from_dict({"delay_margin": 0.3})),
            hs_library,
        )
        != base
    )


def test_resolve_module_from_verilog(hs_library):
    from repro.designs import counter
    from repro.netlist.verilog import write_module

    source = write_module(counter(hs_library, width=4))
    module = resolve_module(JobSpec(verilog=source), hs_library)
    assert module.name == "counter"


# ---------------------------------------------------------------------------
# Daemon: dedupe, cache sharing, drain, failure isolation
# ---------------------------------------------------------------------------

@pytest.fixture
def daemon(tmp_path):
    with ServiceDaemon(run_dir=str(tmp_path / "svc"), workers=2) as svc:
        yield svc


def test_daemon_runs_a_job_and_journals_it(daemon):
    job, deduped = daemon.submit(small_spec())
    assert deduped is False
    daemon.queue.wait(job.id, timeout=120.0)
    assert job.state is JobState.DONE
    result = daemon.job_result(job.id)
    assert result["summary"]["regions"] >= 1
    assert "verilog" not in result  # stripped unless asked for
    assert "sdc" in result
    # the per-job journal landed under <run_dir>/jobs/ (append mode,
    # parent directory auto-created -- the RunJournal fix)
    events = read_journal(daemon.job_journal_path(job.id))
    assert any(e["event"] == "run_end" for e in events)


def test_daemon_dedupes_identical_submissions(daemon):
    job1, d1 = daemon.submit(small_spec())
    job2, d2 = daemon.submit(small_spec())
    assert (d1, d2) == (False, True)
    assert job1.id == job2.id
    daemon.queue.wait(job1.id, timeout=120.0)
    # identical spec, different scheduling knobs: still the same job
    job3, d3 = daemon.submit(small_spec(priority=5))
    assert d3 and job3.id == job1.id


def test_daemon_forced_rerun_is_served_from_shared_cache(daemon):
    job1, _ = daemon.submit(small_spec())
    daemon.queue.wait(job1.id, timeout=120.0)
    assert job1.state is JobState.DONE
    job2, deduped = daemon.submit(small_spec(), reuse=False)
    assert deduped is False and job2.id != job1.id
    daemon.queue.wait(job2.id, timeout=120.0)
    stages = daemon.job_result(job2.id)["stages"]
    assert stages["cached"] == stages["total"]  # one flow run, replayed
    assert daemon.cache.stats.hits >= stages["total"]


def test_daemon_failure_isolation(daemon):
    poison, _ = daemon.submit(
        JobSpec(design="dlx", params={"bogus": 1})
    )
    daemon.queue.wait(poison.id, timeout=120.0)
    assert poison.state is JobState.FAILED
    assert "bogus" in poison.error
    with pytest.raises(LookupError):
        daemon.job_result(poison.id)
    ok, _ = daemon.submit(small_spec())
    daemon.queue.wait(ok.id, timeout=120.0)
    assert ok.state is JobState.DONE


def test_daemon_graceful_drain(tmp_path):
    daemon = ServiceDaemon(run_dir=str(tmp_path / "svc"), workers=1)
    try:
        job, _ = daemon.submit(small_spec())
        assert daemon.drain(timeout=120.0) is True
        assert job.state is JobState.DONE
        with pytest.raises(QueueClosed):
            daemon.submit(small_spec(params={"width": 6}))
        assert daemon.health()["status"] == "draining"
    finally:
        daemon.close(timeout=10.0)
    events = read_journal(os.path.join(daemon.run_dir, "daemon.jsonl"))
    assert [e["event"] for e in events][-1] == "daemon_stop"


def test_daemon_metrics_snapshot(daemon):
    job, _ = daemon.submit(small_spec())
    daemon.queue.wait(job.id, timeout=120.0)
    snapshot = daemon.metrics_snapshot()
    assert snapshot["service"]["jobs"]["done"] == 1
    counters = snapshot["metrics"]["counters"]
    assert counters["service.jobs.submitted"] == 1
    assert counters["service.jobs.done"] == 1
    stage_histograms = [
        name
        for name in snapshot["metrics"]["histograms"]
        if name.startswith("service.stage.")
    ]
    assert "service.stage.network" in stage_histograms


# ---------------------------------------------------------------------------
# HTTP round trip via service.client
# ---------------------------------------------------------------------------

@pytest.fixture
def service(tmp_path):
    daemon = ServiceDaemon(run_dir=str(tmp_path / "svc"), workers=2)
    server = make_server(daemon).start_background()
    client = ServiceClient(server.url)
    yield daemon, server, client
    server.stop()
    daemon.close(timeout=10.0)


def test_http_submit_status_result_round_trip(service):
    _daemon, _server, client = service
    assert client.health()["status"] == "ok"
    ticket = client.submit(small_spec())
    status = client.wait(ticket["id"], timeout=120.0)
    assert status["state"] == "done"
    result = client.result(ticket["id"], include_verilog=True)
    assert result["summary"]["flip_flops_replaced"] == 4
    assert "module counter" in result["verilog"]
    # second identical submission dedupes over the wire
    again = client.submit(small_spec())
    assert again["deduped"] is True and again["id"] == ticket["id"]
    listing = client.jobs()["jobs"]
    assert [j["id"] for j in listing] == [ticket["id"]]


def test_http_error_mapping(service):
    _daemon, _server, client = service
    with pytest.raises(ServiceClientError) as excinfo:
        client.status("feedfacecafe")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceClientError) as excinfo:
        client.submit({"design": "not-a-design"})
    assert excinfo.value.status == 400
    ticket = client.submit(small_spec())
    client.wait(ticket["id"], timeout=120.0)
    poison = client.submit({"design": "dlx", "params": {"bogus": 1}})
    assert client.wait(poison["id"], timeout=120.0)["state"] == "failed"
    with pytest.raises(ServiceClientError) as excinfo:
        client.result(poison["id"])
    assert excinfo.value.status == 409


def test_http_metrics_and_prometheus(service):
    _daemon, _server, client = service
    ticket = client.submit(small_spec())
    client.wait(ticket["id"], timeout=120.0)
    snapshot = client.metrics()
    assert snapshot["service"]["jobs"]["done"] == 1
    import urllib.request

    text = (
        urllib.request.urlopen(
            _server.url + "/metrics?format=prometheus", timeout=10
        )
        .read()
        .decode()
    )
    assert "service_jobs_done 1" in text
    assert "service_stage_network_count" in text


def test_http_shutdown_drains(service):
    daemon, server, client = service
    ticket = client.submit(small_spec())
    client.wait(ticket["id"], timeout=120.0)
    client.shutdown()
    deadline = time.monotonic() + 10.0
    while daemon.queue.accepting and time.monotonic() < deadline:
        time.sleep(0.05)
    assert not daemon.queue.accepting


# ---------------------------------------------------------------------------
# ArtifactCache satellite: eviction + advisory lock
# ---------------------------------------------------------------------------

def test_cache_lru_eviction_under_max_bytes(tmp_path):
    blob = os.urandom(1500)  # below INLINE_LIMIT: single manifest file
    probe = ArtifactCache(str(tmp_path / "probe"))
    probe.put("00" + "e" * 62, {"blob": blob})
    per_entry = probe.size_bytes()
    # room for four entries but not five
    cache = ArtifactCache(
        str(tmp_path / "cache"), max_bytes=int(per_entry * 4.5)
    )
    for index in range(4):
        assert cache.put(f"{index:02d}{'e' * 62}", {"blob": blob})
        time.sleep(0.02)  # distinct mtimes
    assert cache.stats.evictions == 0
    # keep entry 0 warm so eviction (triggered by storing 4) drops 1
    assert cache.get(f"00{'e' * 62}") is not None
    time.sleep(0.02)
    assert cache.put(f"04{'e' * 62}", {"blob": blob})
    assert cache.stats.evictions >= 1
    assert cache.size_bytes() <= int(per_entry * 4.5)
    assert cache.get(f"01{'e' * 62}") is None  # the cold entry went
    assert cache.get(f"00{'e' * 62}") is not None  # the warm one stayed
    assert cache.get(f"04{'e' * 62}") is not None  # newest protected


def test_cache_eviction_removes_sidecars_with_manifest(tmp_path):
    cache = ArtifactCache(str(tmp_path / "cache"), max_bytes=100_000)
    big = os.urandom(60_000)  # above INLINE_LIMIT: manifest + sidecar
    cache.put("aa" + "a" * 62, {"big": big})
    time.sleep(0.02)
    cache.put("bb" + "b" * 62, {"big": big})
    assert cache.get("aa" + "a" * 62) is None
    assert cache.get("bb" + "b" * 62)["big"] == big
    # no orphan sidecar files survive the eviction
    leftovers = [
        name
        for _root, _dirs, files in os.walk(cache.directory)
        for name in files
        if name.startswith("aa")
    ]
    assert leftovers == []


def test_cache_advisory_lock_file_created(tmp_path):
    cache = ArtifactCache(str(tmp_path / "cache"))
    cache.put("cc" + "c" * 62, {"x": 1})
    assert os.path.exists(os.path.join(cache.directory, ".lock"))
    assert cache.get("cc" + "c" * 62) == {"x": 1}
    cache.clear()
    assert len(cache) == 0


def test_cache_unbounded_never_evicts(tmp_path):
    cache = ArtifactCache(str(tmp_path / "cache"))
    for index in range(5):
        cache.put(f"{index:02d}" + "f" * 62, {"v": index})
    assert cache.stats.evictions == 0
    assert len(cache) == 5


# ---------------------------------------------------------------------------
# parallel_map satellite: indexed errors + max_pending
# ---------------------------------------------------------------------------

def _fail_on_seven(n):
    if n == 7:
        raise ValueError("seven is right out")
    return n * n


def test_parallel_map_serial_path_names_the_failing_item():
    with pytest.raises(PoolItemError) as excinfo:
        parallel_map(_fail_on_seven, range(10), jobs=1)
    assert excinfo.value.index == 7
    assert "item 7" in str(excinfo.value)
    assert isinstance(excinfo.value.original, ValueError)


def test_parallel_map_pool_path_names_the_failing_item():
    with pytest.raises(PoolItemError) as excinfo:
        parallel_map(_fail_on_seven, range(10), jobs=4)
    assert excinfo.value.index == 7
    assert "seven is right out" in str(excinfo.value)


def _square(n):
    return n * n


def test_parallel_map_max_pending_matches_default_path():
    items = list(range(30))
    expected = [n * n for n in items]
    assert parallel_map(_square, items, jobs=4) == expected
    assert parallel_map(_square, items, jobs=4, max_pending=3) == expected
    assert parallel_map(_square, items, jobs=1, max_pending=3) == expected


def test_parallel_map_max_pending_propagates_item_errors():
    with pytest.raises(PoolItemError) as excinfo:
        parallel_map(_fail_on_seven, range(10), jobs=4, max_pending=2)
    assert excinfo.value.index == 7


# ---------------------------------------------------------------------------
# RunJournal satellite: parent directory creation
# ---------------------------------------------------------------------------

def test_journal_creates_parent_directories(tmp_path):
    path = tmp_path / "deep" / "nested" / "jobs" / "j1.jsonl"
    journal = RunJournal(str(path), append=True)
    journal.record("hello", n=1)
    journal.close()
    assert read_journal(str(path))[0]["event"] == "hello"
    # append mode really appends across reopens
    journal2 = RunJournal(str(path), append=True)
    journal2.record("again", n=2)
    journal2.close()
    assert [e["event"] for e in read_journal(str(path))] == ["hello", "again"]
