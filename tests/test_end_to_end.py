"""The complete experimental procedure of Figure 5.1, one test.

Synchronous flow and desynchronization flow side by side on one design,
followed by every analysis the evaluation chapter uses: area comparison,
effective period, power, variability, plus the future-work extensions
(SSTA matching, ECO) -- all chained on the same netlists.
"""

import pytest

from repro.desync import Drdesync, eco_calibrate
from repro.designs import figure22_circuit
from repro.flow import (
    compare_implementations,
    implement_desynchronized,
    implement_synchronous,
)
from repro.liberty import core9_hs
from repro.perf import effective_period_model, measure_effective_period
from repro.power import activity_from_simulation, estimate_power
from repro.sim import (
    HandshakeTestbench,
    Simulator,
    check_flow_equivalence,
)
from repro.sta import delay_element_matching
from repro.variability import run_study


def test_figure_5_1_experimental_procedure():
    library = core9_hs()
    sync_module = figure22_circuit(library)
    desync_module = sync_module.clone()
    golden = sync_module.clone()

    # two implementations through the same backend
    sync = implement_synchronous(
        sync_module, library, target_utilization=0.95
    )
    tool = Drdesync(library)
    desync = implement_desynchronized(
        desync_module, library, tool=tool, target_utilization=0.91
    )

    # results comparison (Table 5.1 layout)
    table = compare_implementations("figure22", sync, desync)
    layout = table.phases["Post Layout"]
    assert layout["core size (um2)"]["overhead_pct"] > 0
    assert layout["sequential logic (um2)"]["overhead_pct"] > 10

    # timing: the desynchronized effective period vs the sync clock
    period = effective_period_model(desync.desync, library, "worst")
    assert period.effective_period > 0
    assert sync.min_period > 0

    # simulation: flow-equivalence on the final (post-layout) netlist
    stimulus = lambda k: {
        f"din[{i}]": ((k * 5 + 1) >> i) & 1 for i in range(4)
    }
    fe = check_flow_equivalence(
        golden, desync.desync, library, cycles=8, stimulus=stimulus
    )
    assert fe.equivalent, fe.mismatches[:3]

    # power from simulated activity
    simulator = Simulator(desync_module, library)
    bench = HandshakeTestbench(
        simulator,
        desync.desync.network.env_ports,
        desync.desync.network.reset_net,
    )
    bench.apply_reset(0, initial_inputs=stimulus(0))
    bench.run_items(8, stimulus)
    power = estimate_power(
        desync_module, library, activity_from_simulation(simulator)
    )
    assert power.total_mw > 0

    # variability: the Figure 5.4 statistic on this design's period
    nominal = period.effective_period / library.corner("worst").derate
    study = run_study(nominal, n_chips=3000, margin=0.10)
    assert study.fraction_desync_faster > 0.8

    # future work: SSTA matching yield and ECO recalibration
    matching = delay_element_matching(desync.desync, library)
    assert matching and all(r.yield_correlated > 0.99 for r in matching)
    eco = eco_calibrate(desync.desync, library)
    assert desync_module.check() == []
    # the design still works after ECO
    fe_after = check_flow_equivalence(
        golden, desync.desync, library, cycles=6, stimulus=stimulus
    )
    assert fe_after.equivalent
