"""Flow-equivalence validation: the central correctness claim (section 2.1).

Every sequential element of the desynchronized circuit must store the
exact same data sequence as its synchronous counterpart.  These tests
run both versions in the event-driven simulator and compare captured
sequences element by element.
"""

import pytest

from repro.desync import DesyncOptions, Drdesync
from repro.designs.simple import (
    counter,
    figure22_circuit,
    gated_counter,
    pipeline3,
    scan_pipeline,
    shift_register,
)
from repro.liberty import core9_hs
from repro.sim import check_flow_equivalence


@pytest.fixture(scope="module")
def lib():
    return core9_hs()


@pytest.fixture(scope="module")
def tool(lib):
    return Drdesync(lib)


def pipeline_stimulus(k):
    return {f"din[{i}]": ((38 * k + 3) >> i) & 1 for i in range(8)}


def figure22_stimulus(k):
    return {f"din[{i}]": ((k * 5 + 1) >> i) & 1 for i in range(4)}


CASES = [
    ("counter", counter, {"width": 4}, 8, None),
    ("pipeline3", pipeline3, {"width": 8}, 10, pipeline_stimulus),
    ("figure22", figure22_circuit, {"width": 4}, 10, figure22_stimulus),
    ("shift_register", shift_register, {"depth": 4}, 10,
     lambda k: {"sin": (k * 3 + 1) % 2}),
    ("scan_pipeline", scan_pipeline, {"width": 4}, 8,
     lambda k: dict([("scan_in", 0), ("scan_en", 0)]
                    + [(f"din[{i}]", ((k * 7 + 2) >> i) & 1) for i in range(4)])),
    ("gated_counter", gated_counter, {"width": 4}, 8,
     lambda k: {"en": 1 if k % 3 else 0}),
]


@pytest.mark.parametrize(
    "name,build,kwargs,cycles,stimulus", CASES, ids=[c[0] for c in CASES]
)
def test_flow_equivalence(lib, tool, name, build, kwargs, cycles, stimulus):
    mod = build(lib, **kwargs)
    golden = mod.clone()
    result = tool.run(mod)
    report = check_flow_equivalence(
        golden, result, lib, cycles=cycles, stimulus=stimulus
    )
    assert report.compared > 0
    assert report.equivalent, report.mismatches[:5]


def test_flow_equivalence_holds_at_best_corner(lib, tool):
    """Timing-independence: the data sequences match at any corner."""
    mod = pipeline3(lib)
    golden = mod.clone()
    result = tool.run(mod)
    report = check_flow_equivalence(
        golden, result, lib, cycles=6, stimulus=pipeline_stimulus,
        corner="best",
    )
    assert report.equivalent, report.mismatches[:5]


def test_flow_equivalence_with_muxed_delay_elements(lib, tool):
    mod = figure22_circuit(lib)
    golden = mod.clone()
    result = tool.run(mod, DesyncOptions(delay_mux_taps=4))
    # drive the selection inputs to the longest setting (0) via stimulus
    sel_bits = {
        f"{port}[{bit}]": 0
        for port in mod.ports
        if port.startswith("dsel_")
        for bit in range(mod.ports[port].width)
    }

    def stim(k):
        values = dict(figure22_stimulus(k))
        values.update(sel_bits)
        return values

    report = check_flow_equivalence(
        golden, result, lib, cycles=8, stimulus=stim
    )
    assert report.equivalent, report.mismatches[:5]


def test_scan_region_grouping_does_not_break_equivalence(lib, tool):
    """Single-region (ARM-style) conversion is also flow-equivalent."""
    mod = pipeline3(lib)
    golden = mod.clone()
    result = tool.run(mod, DesyncOptions(grouping="single"))
    report = check_flow_equivalence(
        golden, result, lib, cycles=8, stimulus=pipeline_stimulus
    )
    assert report.equivalent, report.mismatches[:5]


def test_sequences_have_expected_counter_values(lib, tool):
    """Beyond equality: the counter's slave latches really count."""
    mod = counter(lib, width=4)
    golden = mod.clone()
    result = tool.run(mod)
    report = check_flow_equivalence(golden, result, lib, cycles=8)
    assert report.equivalent
    # reconstruct the counter value per capture from the bit sequences
    lsb = report.desync_sequences["r_state_0"]
    next_bit = report.desync_sequences["r_state_1"]
    values = []
    for k in range(len(lsb)):
        value = sum(
            report.desync_sequences[f"r_state_{i}"][k] << i for i in range(4)
        )
        values.append(value)
    assert values == list(range(1, len(values) + 1))
