"""Power estimation, variability Monte-Carlo and performance analysis."""

import pytest

from repro.desync import Drdesync
from repro.designs import counter, pipeline3
from repro.liberty import core9_hs
from repro.perf import (
    control_overhead_delay,
    effective_period_model,
    max_cycle_ratio,
    measure_effective_period,
)
from repro.power import activity_from_simulation, estimate_power
from repro.sim import (
    HandshakeTestbench,
    Simulator,
    SyncTestbench,
    initialize_registers,
)
from repro.variability import (
    VariabilityModel,
    desynchronized_period,
    run_study,
    synchronous_period,
)


@pytest.fixture(scope="module")
def lib():
    return core9_hs()


# ----------------------------------------------------------------------
# power
# ----------------------------------------------------------------------

def _simulate_counter(lib, cycles, period):
    mod = counter(lib, width=8)
    sim = Simulator(mod, lib)
    initialize_registers(sim, 0)
    bench = SyncTestbench(sim, period=period)
    bench.run_cycles(cycles)
    return mod, sim


def test_power_report_units(lib):
    mod, sim = _simulate_counter(lib, 20, 4.0)
    activity = activity_from_simulation(sim)
    report = estimate_power(mod, lib, activity)
    assert report.switching_mw > 0
    assert report.internal_mw > 0
    assert report.leakage_mw > 0
    assert report.total_mw == pytest.approx(
        report.switching_mw + report.internal_mw + report.leakage_mw
    )


def test_power_grows_with_frequency(lib):
    mod_fast, sim_fast = _simulate_counter(lib, 20, 3.0)
    mod_slow, sim_slow = _simulate_counter(lib, 20, 9.0)
    fast = estimate_power(mod_fast, lib, activity_from_simulation(sim_fast))
    slow = estimate_power(mod_slow, lib, activity_from_simulation(sim_slow))
    assert fast.switching_mw > slow.switching_mw * 1.5


def test_leakage_voltage_sensitivity(lib):
    """Leakage grows with supply voltage: the fast (1.1 V) corner leaks
    more than the slow (0.9 V) one despite its lower temperature."""
    mod, sim = _simulate_counter(lib, 10, 4.0)
    activity = activity_from_simulation(sim)
    slow_corner = estimate_power(mod, lib, activity, corner="worst")
    fast_corner = estimate_power(mod, lib, activity, corner="best")
    assert fast_corner.leakage_mw > slow_corner.leakage_mw


def test_zero_duration_rejected(lib):
    mod, sim = _simulate_counter(lib, 5, 4.0)
    activity = activity_from_simulation(sim)
    activity.duration_ns = 0.0
    with pytest.raises(ValueError):
        estimate_power(mod, lib, activity)


# ----------------------------------------------------------------------
# variability
# ----------------------------------------------------------------------

def test_sampling_is_deterministic():
    model = VariabilityModel()
    a = model.sample_chips(50, seed=1)
    b = model.sample_chips(50, seed=1)
    assert [c.inter_die for c in a] == [c.inter_die for c in b]


def test_sync_period_is_worst_case():
    model = VariabilityModel(sigma_inter=0.10, truncate_sigma=3.0)
    assert synchronous_period(2.0, model) == pytest.approx(2.0 * 1.3)


def test_desync_tracks_the_die():
    model = VariabilityModel()
    chips = model.sample_chips(100, seed=3)
    fast = min(chips, key=lambda c: c.inter_die)
    slow = max(chips, key=lambda c: c.inter_die)
    assert desynchronized_period(2.0, fast) < desynchronized_period(2.0, slow)


def test_study_reproduces_90_percent_claim():
    """Figure 5.4: desync faster than sync worst case in ~90% of chips."""
    study = run_study(2.0, n_chips=4000, margin=0.10)
    assert 0.80 < study.fraction_desync_faster <= 1.0
    assert study.mean_desync_period < study.sync_period


def test_histogram_sums_to_one():
    study = run_study(2.0, n_chips=1000)
    histogram = study.histogram(bins=10)
    assert sum(b["probability"] for b in histogram) == pytest.approx(1.0)


def test_excessive_margin_erodes_the_win():
    tight = run_study(2.0, n_chips=2000, margin=0.05)
    fat = run_study(2.0, n_chips=2000, margin=0.60)
    assert fat.fraction_desync_faster < tight.fraction_desync_faster


# ----------------------------------------------------------------------
# performance
# ----------------------------------------------------------------------

def test_control_overhead_positive(lib):
    worst = control_overhead_delay(lib, "worst")
    best = control_overhead_delay(lib, "best")
    assert worst > best > 0


def test_effective_period_model(lib):
    mod = counter(lib, width=8)
    result = Drdesync(lib).run(mod)
    report = effective_period_model(result, lib, "worst")
    assert report.effective_period > 0
    assert report.critical_region in result.network.delay_elements
    assert report.per_region[report.critical_region] == report.effective_period
    # the self-looped counter region appears in the critical cycle
    assert report.critical_cycle


def test_effective_period_scales_with_corner(lib):
    mod = counter(lib, width=8)
    result = Drdesync(lib).run(mod)
    worst = effective_period_model(result, lib, "worst").effective_period
    best = effective_period_model(result, lib, "best").effective_period
    assert worst > best


def test_measured_period_close_to_model(lib):
    """The simulated free-running counter matches the analytic period."""
    mod = counter(lib, width=6)
    result = Drdesync(lib).run(mod)
    sim = Simulator(mod, lib, corner="worst")
    bench = HandshakeTestbench(
        sim, result.network.env_ports, result.network.reset_net
    )
    bench.apply_reset(0)
    bench.run_free(400.0)
    probe = next(
        name for name in sim._models if name.endswith("_ls")
    )
    measured = measure_effective_period(sim, probe)
    model = effective_period_model(result, lib, "worst").effective_period
    assert measured is not None
    assert measured == pytest.approx(model, rel=0.6)


def test_max_cycle_ratio():
    import networkx as nx

    graph = nx.DiGraph()
    graph.add_edge("a", "b", weight=2.0, tokens=1.0)
    graph.add_edge("b", "a", weight=4.0, tokens=1.0)
    graph.add_edge("b", "b", weight=5.0, tokens=1.0)
    assert max_cycle_ratio(graph) == pytest.approx(5.0)
