"""Tests for the performance observatory (PR 10).

Covers the tentpole and its satellites: the opt-in per-stage profiler
(disabled no-op, capture, thread-scoped attribution, bounded
retention), engine integration, the speedscope / collapsed-stack
exporters, sim-kernel introspection counters, the unified
``repro-bench/v1`` schema with machine metadata, the append-only
history store, the statistical regression detector (legacy
bit-identical arithmetic, MAD bands, floors/ceilings), the ``repro
bench`` CLI verbs, the profiled-service-job HTTP round trip, and
``quantile_from_buckets`` edge cases.
"""

import json
import re
import threading
import time

import pytest

from repro.cli import main as cli_main
from repro.desync import build_cmuller, ensure_controller_cells
from repro.engine import FlowEngine, FlowGraph
from repro.engine.graph import Stage
from repro.liberty import GateChooser, core9_hs
from repro.netlist import Module, Netlist, PortDirection, save_verilog
from repro.obs import bench as obs_bench
from repro.obs import prof, trace
from repro.obs.export import (
    SPEEDSCOPE_SCHEMA,
    collapsed_stacks,
    profile_document,
    profile_report,
    speedscope_document,
    summary_report,
    write_profile,
)
from repro.obs.prof import Profiler
from repro.obs.timeseries import quantile_from_buckets
from repro.service import (
    JobSpec,
    ServiceClient,
    ServiceClientError,
    ServiceDaemon,
    make_server,
)
from repro.service.telemetry import TelemetryHub
from repro.sim import Simulator


def _busy(n=4000):
    """Deterministic CPU work with a recognisable call graph."""
    return sum(_square(i) for i in range(n))


def _square(i):
    return i * i


# ---------------------------------------------------------------------------
# Profiler: disabled no-op, capture, retention, thread scoping
# ---------------------------------------------------------------------------

def test_disabled_profiler_is_noop():
    profiler = Profiler(enabled=False)
    with profiler.stage("work") as record:
        assert record is None
        _busy(100)
    assert len(profiler) == 0
    assert profiler.overhead_estimate() == {
        "machinery_s": 0.0,
        "profiled_wall_s": 0.0,
        "fraction": 0.0,
    }


def test_default_module_profiler_is_disabled():
    assert prof.enabled() is False
    with prof.stage("anything") as record:
        assert record is None


def test_enabled_profiler_captures_hot_table_and_memory():
    profiler = Profiler(enabled=True)
    with profiler.stage("compute", graph="g", flavor="unit") as record:
        _busy()
    assert len(profiler) == 1
    assert record.wall_s > 0
    assert record.calls > 0
    assert record.hot, "hot-function digest is empty"
    labels = [row["func"] for row in record.hot]
    assert any("_square" in label for label in labels)
    assert record.mem_peak_kb is not None
    assert record.attrs == {"flavor": "unit"}
    payload = record.to_dict()
    assert payload["stage"] == "compute"
    assert payload["graph"] == "g"
    assert payload["thread"] == threading.current_thread().name
    assert payload["attrs"] == {"flavor": "unit"}


def test_memory_false_skips_tracemalloc():
    profiler = Profiler(enabled=True, memory=False)
    with profiler.stage("compute"):
        _busy(200)
    record = profiler.profiles()[0]
    assert record.mem_peak_kb is None
    assert "mem_peak_kb" not in record.to_dict()


def test_stage_exception_still_records_partial_profile():
    profiler = Profiler(enabled=True)
    with pytest.raises(RuntimeError):
        with profiler.stage("broken"):
            raise RuntimeError("boom")
    record = profiler.profiles()[0]
    assert record.attrs["error"] == "RuntimeError: boom"
    assert record.wall_s >= 0


def test_max_profiles_rings_and_counts_drops():
    profiler = Profiler(enabled=True, memory=False, max_profiles=3)
    for i in range(5):
        with profiler.stage(f"s{i}"):
            pass
    assert len(profiler) == 3
    assert profiler.dropped == 2
    assert [p.name for p in profiler.profiles()] == ["s2", "s3", "s4"]
    assert profiler.to_dict()["dropped"] == 2


def test_nested_stage_is_timed_not_reprofiled():
    profiler = Profiler(enabled=True, memory=False)
    with profiler.stage("outer"):
        with profiler.stage("inner"):
            _busy(500)
    by_name = {p.name: p for p in profiler.profiles()}
    assert set(by_name) == {"outer", "inner"}
    # cProfile is per-thread exclusive: the nested stage keeps its wall
    # time but gets no call-graph of its own
    assert by_name["inner"].wall_s > 0
    assert by_name["inner"].hot == []
    assert by_name["outer"].hot


def test_counters_sum_and_peak_merge():
    profiler = Profiler(enabled=True, memory=False)
    with profiler.stage("sim"):
        profiler.add_counters(events=3, evals=1)
        profiler.add_counters(events=2)
        profiler.peak_counters(queue=5)
        profiler.peak_counters(queue=3)  # lower: must not win
    record = profiler.profiles()[0]
    assert record.counters == {"events": 5, "evals": 1, "queue": 5}
    # no active stage -> counters are dropped, not crashed
    profiler.add_counters(events=99)
    assert profiler.profiles()[0].counters["events"] == 5


def test_scoped_activation_is_thread_local():
    profiler = Profiler(enabled=True, memory=False)
    seen = {}

    def worker():
        seen["enabled"] = prof.enabled()

    with prof.scoped(profiler):
        assert prof.enabled() is True
        assert prof.get_profiler() is profiler
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    assert seen["enabled"] is False, "scope leaked across threads"
    assert prof.enabled() is False
    assert prof.scoped(None).__enter__() is None  # None scope is a no-op


def test_overhead_estimate_accounts_machinery():
    profiler = Profiler(enabled=True)
    with profiler.stage("a"):
        _busy(500)
    estimate = profiler.overhead_estimate()
    assert estimate["machinery_s"] >= 0
    assert estimate["profiled_wall_s"] > 0
    # both terms are rounded independently of the stored fraction, so
    # the recomputation only matches loosely on a fast stage
    assert estimate["fraction"] == pytest.approx(
        estimate["machinery_s"] / estimate["profiled_wall_s"], abs=1e-2
    )


# ---------------------------------------------------------------------------
# Engine integration: stages profile under a scoped profiler
# ---------------------------------------------------------------------------

def _two_stage_graph():
    graph = FlowGraph("unit")
    graph.add(
        Stage(
            name="make",
            func=lambda inputs: _busy(2000),
            outputs=("value",),
            cacheable=False,
        )
    )
    graph.add(
        Stage(
            name="consume",
            func=lambda inputs: inputs["value"] + 1,
            inputs=("value",),
            outputs=("final",),
            cacheable=False,
        )
    )
    return graph


def test_engine_profiles_each_stage_under_scope():
    profiler = Profiler(enabled=True)
    with prof.scoped(profiler):
        result = FlowEngine().run(_two_stage_graph())
    assert result.artifacts["final"] == _busy(2000) + 1
    names = {p.name for p in profiler.profiles()}
    assert names == {"make", "consume"}
    make_profile = next(
        p for p in profiler.profiles() if p.name == "make"
    )
    assert any("_square" in row["func"] for row in make_profile.hot)


def test_engine_without_scope_profiles_nothing():
    before = len(prof.get_profiler())
    FlowEngine().run(_two_stage_graph())
    assert len(prof.get_profiler()) == before


def test_parallel_executor_attributes_stages_to_the_scoped_profiler():
    graph = FlowGraph("par")
    for i in range(4):
        graph.add(
            Stage(
                name=f"branch{i}",
                func=lambda inputs: _busy(500),
                outputs=(f"out{i}",),
                cacheable=False,
            )
        )
    profiler = Profiler(enabled=True, memory=False)
    with prof.scoped(profiler):
        FlowEngine(jobs=3).run(graph)
    assert {p.name for p in profiler.profiles()} == {
        "branch0", "branch1", "branch2", "branch3"
    }


# ---------------------------------------------------------------------------
# Exporters: speedscope, collapsed stacks, reports, write_profile
# ---------------------------------------------------------------------------

@pytest.fixture()
def profiled():
    profiler = Profiler(enabled=True)
    with profiler.stage("alpha"):
        _busy(2000)
    with profiler.stage("beta"):
        sorted(range(5000), key=lambda x: -x)
    return profiler


def test_speedscope_document_validates_shape(profiled):
    document = speedscope_document(profiled, name="unit")
    assert document["$schema"] == SPEEDSCOPE_SCHEMA
    assert document["name"] == "unit"
    assert document["activeProfileIndex"] == 0
    frames = document["shared"]["frames"]
    assert frames and all("name" in frame for frame in frames)
    assert len(document["profiles"]) == 2
    for profile in document["profiles"]:
        assert profile["type"] == "sampled"
        assert profile["unit"] == "seconds"
        assert profile["name"].startswith("stage:")
        assert len(profile["samples"]) == len(profile["weights"])
        assert profile["samples"], "stage profile has no samples"
        for stack in profile["samples"]:
            assert stack, "empty stack"
            assert all(0 <= idx < len(frames) for idx in stack)
        assert all(w > 0 for w in profile["weights"])
        assert profile["endValue"] == pytest.approx(
            sum(profile["weights"]), abs=1e-6
        )
    json.dumps(document)  # must be JSON-serialisable as-is


def test_collapsed_stacks_format(profiled):
    text = collapsed_stacks(profiled)
    lines = text.strip().splitlines()
    assert lines
    for line in lines:
        assert re.match(r"^(alpha|beta);.+ \d+$", line), line


def test_profile_document_schema_and_report(profiled):
    document = profile_document(profiled, name="unit")
    assert document["schema"] == "repro-profile/v1"
    assert document["stage_count"] == 2
    assert len(document["stages"]) == 2
    assert all(stage["hot"] for stage in document["stages"])
    assert document["speedscope"]["$schema"] == SPEEDSCOPE_SCHEMA
    report = profile_report(profiled)
    assert "stage alpha:" in report
    assert "profiler machinery overhead" in report


def test_write_profile_emits_all_artifacts(profiled, tmp_path):
    paths = write_profile(str(tmp_path / "prof"), profiled, name="unit")
    assert set(paths) == {"profile", "speedscope", "collapsed", "report"}
    with open(paths["profile"]) as handle:
        document = json.load(handle)
    assert document["schema"] == "repro-profile/v1"
    with open(paths["speedscope"]) as handle:
        assert json.load(handle)["$schema"] == SPEEDSCOPE_SCHEMA
    assert open(paths["collapsed"]).read().strip()
    assert "stage alpha:" in open(paths["report"]).read()


def test_summary_report_surfaces_drops_and_profiler_overhead(profiled):
    tracer = trace.Tracer(max_spans=2)
    for i in range(5):
        with tracer.span(f"s{i}"):
            pass
    report = summary_report(tracer, profiled)
    assert "dropped 3 span(s)" in report
    assert "max_spans=2" in report
    assert "profiler: 2 stage profile(s)" in report
    # a plain tracer and no profiler stays free of admissions
    clean = summary_report(trace.Tracer(), Profiler(enabled=False))
    assert "dropped" not in clean
    assert "profiler:" not in clean


# ---------------------------------------------------------------------------
# Sim-kernel introspection counters
# ---------------------------------------------------------------------------

def test_simulator_reports_counters_into_active_stage():
    library = core9_hs()
    ensure_controller_cells(library)
    module = Module("cm")
    for name in ("a", "b"):
        module.add_port(name, PortDirection.INPUT)
    module.add_port("z", PortDirection.OUTPUT)
    build_cmuller(module, ["a", "b"], "z", GateChooser(library))

    profiler = Profiler(enabled=True, memory=False)
    with prof.scoped(profiler), profiler.stage("simulate"):
        sim = Simulator(module, library)
        for vector in ((0, 0), (1, 1), (0, 0)):
            sim.set_input("a", vector[0])
            sim.set_input("b", vector[1])
            sim.settle(max_time=50)
    record = profiler.profiles()[0]
    assert record.counters["sim_events"] > 0
    assert record.counters["sim_evaluations"] > 0
    assert record.counters["sim_queue_high_water"] >= 1
    assert "counters:" in profile_report(profiler)


# ---------------------------------------------------------------------------
# Unified bench schema: metadata, stamping, history store
# ---------------------------------------------------------------------------

def test_machine_metadata_keys():
    meta = obs_bench.machine_metadata()
    assert set(meta) == {
        "platform", "machine", "python", "python_impl",
        "cpu_count", "git_rev", "timestamp_utc",
    }
    assert meta["python_impl"]
    assert meta["timestamp_utc"].endswith("+00:00")
    obs_bench.git_revision("/")  # outside a repo: returns None, no raise


def test_stamp_upgrades_legacy_payload_in_place():
    payload = {"bench": "x", "speedup": {"combined": 3.0}}
    returned = obs_bench.stamp(payload, "x", {"combined_speedup": 3.0})
    assert returned is payload
    assert payload["schema"] == obs_bench.SCHEMA
    assert payload["name"] == "x"
    assert payload["metrics"] == {"combined_speedup": 3.0}
    assert payload["speedup"] == {"combined": 3.0}  # legacy field kept
    assert "git_rev" in payload["meta"]


def test_bench_result_round_trips():
    result = obs_bench.BenchResult(
        name="unit", metrics={"r": 2.0}, detail={"note": "hi"}
    )
    payload = result.to_dict()
    assert payload["schema"] == obs_bench.SCHEMA
    again = obs_bench.BenchResult.from_dict(payload)
    assert again.name == "unit"
    assert again.metrics == {"r": 2.0}
    assert again.detail == {"note": "hi"}


def test_history_append_load_and_torn_line(tmp_path):
    path = str(tmp_path / "history.jsonl")
    assert obs_bench.load_history(path) == []
    for value in (1.0, 2.0, 3.0):
        obs_bench.append_history(
            {"name": "unit", "metrics": {"r": value}}, path
        )
    obs_bench.append_history({"name": "other", "metrics": {"r": 9.0}}, path)
    with open(path, "a") as handle:
        handle.write('{"torn": ')  # a crashed append mid-write
    entries = obs_bench.load_history(path, "unit")
    assert len(entries) == 3
    assert obs_bench.metric_history(entries, "r") == [1.0, 2.0, 3.0]
    assert obs_bench.metric_history(entries, "r", last=2) == [2.0, 3.0]
    assert obs_bench.metric_history(entries, "missing") == []
    assert len(obs_bench.load_history(path)) == 4


def test_history_requires_metrics_block(tmp_path):
    with pytest.raises(ValueError):
        obs_bench.append_history(
            {"name": "legacy"}, str(tmp_path / "h.jsonl")
        )


def test_structured_metric_values_are_unwrapped():
    # the {"value": x, "unit": ...} form must gate like a plain scalar,
    # and non-quantities (bools, notes) must be skipped, not crash
    payload = {
        "name": "unit",
        "metrics": {
            "speedup": {"value": 3.1, "unit": "x"},
            "ratio": 2.0,
            "as_text": "4.5",
            "converged": True,
            "note": "warm cache",
        },
    }
    gateable = obs_bench.baseline_metrics(payload)
    assert gateable == {"speedup": 3.1, "ratio": 2.0, "as_text": 4.5}
    history = obs_bench.metric_history([payload, payload], "speedup")
    assert history == [3.1, 3.1]
    assert obs_bench.metric_history([payload], "converged") == []
    report = obs_bench.check_regression(
        gateable, {"speedup": 3.0, "ratio": 2.0, "as_text": 4.5}, name="unit"
    )
    assert report.ok


# ---------------------------------------------------------------------------
# The regression detector
# ---------------------------------------------------------------------------

def test_legacy_gate_arithmetic_is_bit_identical():
    # the hand-rolled gates used strict '<' against base * (1 - tol):
    # landing exactly on the bound passes
    report = obs_bench.check_regression(
        {"speedup": 3.0}, {"speedup": 4.0}, tolerance=0.25
    )
    assert report.ok
    assert report.checks[0].kind == "ratio"
    report = obs_bench.check_regression(
        {"speedup": 2.999999}, {"speedup": 4.0}, tolerance=0.25
    )
    assert not report.ok
    assert report.exit_code() == 1


def test_legacy_gate_lower_is_better_flips_direction():
    ok = obs_bench.check_regression(
        {"overhead_pct": 5.0},
        {"overhead_pct": 4.0},
        tolerance=0.25,
        lower_is_better=("overhead_pct",),
    )
    assert ok.ok  # 5.0 == 4.0 * 1.25 exactly -> passes (strict '>')
    bad = obs_bench.check_regression(
        {"overhead_pct": 5.01},
        {"overhead_pct": 4.0},
        tolerance=0.25,
        lower_is_better=("overhead_pct",),
    )
    assert not bad.ok


def test_floors_and_ceilings_are_absolute():
    report = obs_bench.check_regression(
        {"speedup": 7.9, "overhead_pct": 6.0},
        floors={"speedup": 8.0},
        ceilings={"overhead_pct": 5.0},
    )
    assert not report.ok
    kinds = {c.metric: c.kind for c in report.failures()}
    assert kinds == {"speedup": "floor", "overhead_pct": "ceiling"}
    # floors for metrics not in the fresh result are skipped, not failed
    report = obs_bench.check_regression({"other": 1.0}, floors={"speedup": 8})
    assert report.ok and not report.checks


def test_statistical_mode_flags_a_thirty_percent_slowdown():
    history = [
        {"name": "unit", "metrics": {"speedup": v}}
        for v in (10.0, 10.2, 9.9, 10.1, 10.0)
    ]
    report = obs_bench.check_regression(
        {"speedup": 7.0},  # -30% vs the ~10.0 median
        {"speedup": 10.0},
        history=history,
    )
    assert not report.ok
    assert report.checks[0].kind == "statistical"
    assert report.checks[0].reference == pytest.approx(10.0)


def test_statistical_mode_accepts_five_consecutive_baseline_reruns(tmp_path):
    """Re-running the committed baseline never trips the detector."""
    path = str(tmp_path / "history.jsonl")
    values = (10.0, 10.2, 9.9, 10.1, 10.0)
    for value in values:
        obs_bench.append_history(
            {"name": "unit", "metrics": {"speedup": value}}, path
        )
    for rerun in values:  # 5 consecutive re-runs of in-family values
        history = obs_bench.load_history(path, "unit")
        report = obs_bench.check_regression(
            {"speedup": rerun}, {"speedup": 10.0}, history=history
        )
        assert report.ok, report.render()
        obs_bench.append_history(
            {"name": "unit", "metrics": {"speedup": rerun}}, path
        )


def test_statistical_band_floors_at_min_rel_band_on_flat_history():
    # MAD of a dead-flat history is 0; the band must not be a hair trigger
    history = [
        {"name": "unit", "metrics": {"speedup": 10.0}} for _ in range(6)
    ]
    report = obs_bench.check_regression(
        {"speedup": 9.6}, {"speedup": 10.0}, history=history
    )
    assert report.ok  # within the 5% min_rel_band floor
    report = obs_bench.check_regression(
        {"speedup": 9.4}, {"speedup": 10.0}, history=history
    )
    assert not report.ok


def test_short_history_falls_back_to_legacy_gate():
    history = [{"name": "unit", "metrics": {"speedup": 10.0}}] * 3
    report = obs_bench.check_regression(
        {"speedup": 9.0}, {"speedup": 10.0}, history=history
    )
    assert report.checks[0].kind == "ratio"
    assert report.ok


def test_report_render_shape():
    report = obs_bench.check_regression(
        {"speedup": 9.0}, {"speedup": 10.0}, name="unit"
    )
    text = report.render()
    assert text.startswith("regression check: unit")
    assert "[ok] speedup:" in text
    empty = obs_bench.check_regression({}, name="unit")
    assert "(no gated metrics)" in empty.render()


# ---------------------------------------------------------------------------
# The ``repro bench`` CLI verbs
# ---------------------------------------------------------------------------

def _write_result(tmp_path, name, value, filename=None):
    payload = obs_bench.stamp(
        {"bench": name}, name, {"speedup": value}
    )
    path = str(tmp_path / (filename or f"{name}.json"))
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return path


def test_bench_record_and_compare_verbs(tmp_path, capsys):
    history = str(tmp_path / "history.jsonl")
    fresh = _write_result(tmp_path, "unit", 10.0)
    assert obs_bench.bench_main(
        ["record", fresh, "--history", history]
    ) == 0
    assert len(obs_bench.load_history(history)) == 1

    baseline = _write_result(tmp_path, "unit", 10.0, "baseline.json")
    assert obs_bench.bench_main(
        ["compare", fresh, "--baseline", baseline, "--history", history]
    ) == 0
    regressed = _write_result(tmp_path, "unit", 2.0, "regressed.json")
    assert obs_bench.bench_main(
        ["compare", regressed, "--baseline", baseline, "--history", history]
    ) == 1
    out = capsys.readouterr().out
    assert "regression check: unit" in out
    assert "[FAIL] speedup:" in out


def test_bench_compare_without_baseline_gates_against_itself(tmp_path):
    fresh = _write_result(tmp_path, "unit", 10.0)
    assert obs_bench.bench_main(
        ["compare", fresh, "--history", str(tmp_path / "none.jsonl")]
    ) == 0


def test_bench_record_rejects_legacy_payload(tmp_path, capsys):
    path = str(tmp_path / "legacy.json")
    with open(path, "w") as handle:
        json.dump({"bench": "legacy", "speedup": {"combined": 2}}, handle)
    assert obs_bench.bench_main(["record", path]) == 1
    assert "no 'metrics' block" in capsys.readouterr().err


def test_bench_report_writes_trend_html(tmp_path):
    history = str(tmp_path / "history.jsonl")
    for value in (1.0, 2.0, 3.0):
        obs_bench.append_history(
            {"name": "unit", "metrics": {"speedup": value}, "meta": {}},
            history,
        )
    out = str(tmp_path / "trend.html")
    assert obs_bench.bench_main(
        ["report", "--history", history, "--out", out]
    ) == 0
    document = open(out).read()
    assert "<svg" in document and "polyline" in document
    assert "unit" in document and "speedup" in document
    empty = obs_bench.trend_report_html([])
    assert "empty history" in empty


def test_cli_routes_bench_verb(tmp_path, capsys):
    fresh = _write_result(tmp_path, "unit", 10.0)
    history = str(tmp_path / "history.jsonl")
    assert cli_main(["bench", "record", fresh, "--history", history]) == 0
    assert "recorded unit" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# CLI --profile / --profile-out
# ---------------------------------------------------------------------------

def test_cli_profile_out_writes_artifacts(tmp_path):
    from repro.designs import figure22_circuit

    library = core9_hs()
    netlist = Netlist()
    netlist.add_module(figure22_circuit(library))
    src = tmp_path / "design.v"
    save_verilog(netlist, str(src))
    profile_dir = tmp_path / "prof"
    code = cli_main([
        str(src),
        "-o", str(tmp_path / "out.v"),
        "--no-cache",
        "--quiet",
        "--profile",
        "--profile-out", str(profile_dir),
    ])
    assert code == 0
    with open(profile_dir / "profile.json") as handle:
        document = json.load(handle)
    assert document["schema"] == "repro-profile/v1"
    assert document["stage_count"] > 0
    assert all(stage["hot"] for stage in document["stages"])
    assert len(document["speedscope"]["profiles"]) == document["stage_count"]
    assert (profile_dir / "profile.collapsed.txt").read_text().strip()
    # opt-in teardown restored the disabled default
    assert prof.enabled() is False


# ---------------------------------------------------------------------------
# Service: profiled jobs round-trip over HTTP, LRU bounding
# ---------------------------------------------------------------------------

@pytest.fixture()
def daemon(tmp_path):
    daemon = ServiceDaemon(run_dir=str(tmp_path / "svc"), workers=1)
    yield daemon
    daemon.close(timeout=30.0)


def test_profiled_job_round_trips_over_http(daemon):
    server = make_server(daemon).start_background()
    try:
        client = ServiceClient(server.url)
        ticket = client.submit(
            {"design": "counter", "params": {"width": 4}, "profile": True}
        )
        client.wait(ticket["id"], timeout=120.0)

        status = client.status(ticket["id"])
        assert status["profiled"] is True

        document = client.profile(ticket["id"])
        assert document["schema"] == "repro-profile/v1"
        assert document["job"] == ticket["id"]
        assert document["stage_count"] > 0
        assert document["stages"], "no per-stage profiles captured"
        assert all(stage["hot"] for stage in document["stages"])
        speedscope = document["speedscope"]
        assert speedscope["$schema"] == SPEEDSCOPE_SCHEMA
        assert len(speedscope["profiles"]) == document["stage_count"]
        frames = speedscope["shared"]["frames"]
        for profile in speedscope["profiles"]:
            assert len(profile["samples"]) == len(profile["weights"])
            for stack in profile["samples"]:
                assert all(0 <= idx < len(frames) for idx in stack)

        # re-submitting the same spec without --profile dedupes onto
        # the already-profiled job (observability options are not part
        # of the job identity)
        dup = client.submit({"design": "counter", "params": {"width": 4}})
        assert dup["id"] == ticket["id"]

        # an unprofiled job 404s instead of returning an empty document
        plain = client.submit({"design": "counter", "params": {"width": 5}})
        client.wait(plain["id"], timeout=120.0)
        assert client.status(plain["id"])["profiled"] is False
        with pytest.raises(ServiceClientError) as err:
            client.profile(plain["id"])
        assert err.value.status == 404
        with pytest.raises(ServiceClientError) as err:
            client.profile("ffffffffffff")
        assert err.value.status == 404
    finally:
        server.stop()


def test_daemon_job_profile_errors(daemon):
    with pytest.raises(KeyError):
        daemon.job_profile("ffffffffffff")
    job, _ = daemon.submit(JobSpec(design="counter", params={"width": 4}))
    daemon.queue.wait(job.id, timeout=120.0)
    with pytest.raises(LookupError):
        daemon.job_profile(job.id)


def test_profiled_jobs_count_service_metric(daemon):
    job, _ = daemon.submit(
        JobSpec(design="counter", params={"width": 4}, profile=True)
    )
    daemon.queue.wait(job.id, timeout=120.0)
    snapshot = daemon.registry.snapshot()
    assert snapshot["counters"]["service.profiles.captured"] >= 1
    assert daemon.job_status(job.id)["profiled"] is True


def test_telemetry_hub_bounds_profiler_registry():
    from repro.obs.metrics import MetricsRegistry

    hub = TelemetryHub(MetricsRegistry(), max_traces=2)
    hub.job_profiler("job-a")
    hub.job_profiler("job-b")
    hub.job_profiler("job-c")
    assert hub.profile_count() == 2
    assert hub.evicted_profiles == 1
    assert hub.get_profiler("job-a") is None  # oldest evicted first
    assert hub.get_profiler("job-c") is not None


def test_job_spec_profile_field_serialization():
    spec = JobSpec(design="counter", profile=True)
    assert spec.to_dict()["profile"] is True
    again = JobSpec.from_dict(spec.to_dict())
    assert again.profile is True
    # the default stays out of the serialized form (byte-identical to
    # pre-profile job records)
    assert JobSpec(design="counter").to_dict().get("profile") is None


# ---------------------------------------------------------------------------
# quantile_from_buckets edge cases (satellite 4)
# ---------------------------------------------------------------------------

BOUNDS = (1.0, 2.0, 4.0)


def test_quantile_empty_window_is_none():
    assert quantile_from_buckets(BOUNDS, (0, 0, 0), 0, 0.5) is None
    assert quantile_from_buckets(BOUNDS, (), 0, 0.5) is None


def test_quantile_single_bucket_mass_interpolates_inside_it():
    # all 10 observations in (1, 2]: the median interpolates halfway
    value = quantile_from_buckets(BOUNDS, (0, 10, 0), 0, 0.5)
    assert value == pytest.approx(1.5)
    # q near the edges stays inside the same bucket
    assert 1.0 <= quantile_from_buckets(BOUNDS, (0, 10, 0), 0, 0.01) <= 2.0
    assert 1.0 <= quantile_from_buckets(BOUNDS, (0, 10, 0), 0, 0.99) <= 2.0


def test_quantile_all_mass_in_overflow_clamps_to_last_bound():
    assert quantile_from_buckets(BOUNDS, (0, 0, 0), 7, 0.5) == 4.0
    # mixed: the high quantile lands in the overflow -> clamped
    assert quantile_from_buckets(BOUNDS, (1, 0, 0), 9, 0.99) == 4.0


def test_quantile_q_zero_and_one():
    counts = (4, 4, 2)
    # q=0: rank 0 lands at the lower edge of the first occupied bucket
    assert quantile_from_buckets(BOUNDS, counts, 0, 0.0) == pytest.approx(0.0)
    # first bucket's lower edge is 0 by convention
    assert quantile_from_buckets(
        (1.0, 2.0), (0, 5), 0, 0.0
    ) == pytest.approx(1.0)
    # q=1: the full rank exhausts every bucket -> upper edge of the last
    assert quantile_from_buckets(BOUNDS, counts, 0, 1.0) == pytest.approx(4.0)


def test_quantile_interpolation_across_buckets():
    # 2 obs in (0,1], 2 in (1,2]: p75 is halfway through the second
    value = quantile_from_buckets((1.0, 2.0), (2, 2), 0, 0.75)
    assert value == pytest.approx(1.5)
