"""Figure 2.4 protocol-zoo tests: state counts and classifications."""

import pytest

from repro.stg import (
    DESYNC_MODEL,
    FALL_DECOUPLED,
    FULLY_DECOUPLED,
    NON_OVERLAPPING,
    OVERLAPPING,
    PROTOCOL_LADDER,
    PROTOCOLS,
    SEMI_DECOUPLED,
    SIMPLE,
    ladder_report,
)

GOOD = [FULLY_DECOUPLED, DESYNC_MODEL, SEMI_DECOUPLED, SIMPLE, NON_OVERLAPPING]


@pytest.mark.parametrize(
    "protocol,expected_states",
    [
        (FULLY_DECOUPLED, 10),
        (DESYNC_MODEL, 8),
        (SEMI_DECOUPLED, 6),
        (SIMPLE, 5),
        (NON_OVERLAPPING, 4),
    ],
    ids=lambda p: p.name if hasattr(p, "name") else str(p),
)
def test_paper_state_counts(protocol, expected_states):
    """Figure 2.4 annotates the ladder with 10/8/6/5/4 states."""
    assert protocol.state_count() == expected_states
    assert protocol.paper_states == expected_states


@pytest.mark.parametrize("protocol", GOOD, ids=lambda p: p.name)
def test_good_protocols_live_and_flow_equivalent(protocol):
    assert protocol.is_live_pairwise()
    assert protocol.is_flow_equivalent
    assert protocol.is_usable


@pytest.mark.parametrize("protocol", GOOD, ids=lambda p: p.name)
@pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
def test_good_protocols_live_in_rings(protocol, n):
    assert protocol.ring_status(n) == "live"


def test_overlapping_not_flow_equivalent():
    violation = OVERLAPPING.flow_violation()
    assert violation is not None
    assert violation.kind == "overwrite"
    assert not OVERLAPPING.is_usable


def test_fall_decoupled_not_usable():
    """Figure 2.4 marks fall-decoupled 'not live': it breaks in rings."""
    assert FALL_DECOUPLED.ring_status(4) != "live"
    assert not FALL_DECOUPLED.is_usable


def test_concurrency_strictly_decreases_down_the_ladder():
    counts = [p.state_count() for p in GOOD]
    assert counts == sorted(counts, reverse=True)


def test_ring_state_count_grows_with_size():
    small = len(
        __import__("repro.stg.petri", fromlist=["explore"]).explore(
            SEMI_DECOUPLED.ring_stg(4)
        ).states
    )
    large = len(
        __import__("repro.stg.petri", fromlist=["explore"]).explore(
            SEMI_DECOUPLED.ring_stg(6)
        ).states
    )
    assert large > small


def test_ladder_report_shape():
    rows = ladder_report()
    assert [r["protocol"] for r in rows] == [p.name for p in PROTOCOL_LADDER]
    by_name = {r["protocol"]: r for r in rows}
    assert by_name["semi_decoupled"]["states"] == 6
    assert by_name["semi_decoupled"]["usable"]
    assert not by_name["overlapping"]["flow_equivalent"]
    assert by_name["fall_decoupled"]["ring4"] != "live"


def test_protocol_registry():
    assert set(PROTOCOLS) >= {
        "overlapping",
        "fully_decoupled",
        "desync_model",
        "semi_decoupled",
        "simple",
        "non_overlapping",
        "fall_decoupled",
        "rise_decoupled",
    }
    assert PROTOCOLS["rise_decoupled"].state_count() == 10
