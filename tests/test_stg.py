"""STG engine tests: reachability, liveness, CSC, flow-equivalence."""

import pytest

from repro.stg import (
    Stg,
    StgError,
    check_consistency,
    check_flow_equivalence,
    csc_conflicts,
    explore,
    has_csc,
    is_deadlock_free,
    is_live,
    t,
)


def ring_stg():
    """A+ -> A- -> B+ -> B- -> A+ ring (non-overlapping protocol)."""
    stg = Stg(outputs=["A", "B"])
    stg.arc("A-", "B+")
    stg.arc("B-", "A+", marked=True)
    return stg


def test_transition_parsing():
    assert t("a+").signal == "a" and t("a+").polarity
    assert t("b-").name == "b-"
    assert t("a+/1").tag == 1
    with pytest.raises(ValueError):
        t("a")


def test_ring_reachability():
    graph = explore(ring_stg())
    assert graph.state_count == 4
    assert is_deadlock_free(graph)
    assert is_live(graph)
    assert check_consistency(graph)


def test_alternation_enforced():
    stg = ring_stg()
    state = stg.initial_state()
    enabled = [stg.transitions[i].name for i in stg.enabled(state)]
    assert enabled == ["A+"]  # A- blocked: A is 0
    state = stg.fire(state, stg.enabled(state)[0])
    enabled = [stg.transitions[i].name for i in stg.enabled(state)]
    assert "A+" not in enabled


def test_unsafe_net_detected():
    stg = Stg(outputs=["A", "B"])
    # B- can fire twice pushing two tokens into the same place
    stg.arc("B-", "A+", marked=True)
    stg.arc("A+", "B+", marked=True)
    # nothing constrains B's cycle: B+ B- B+ B- overflows B- -> A+
    with pytest.raises(StgError):
        graph = explore(stg)
        # firing exploration itself raises; keep for clarity
        assert graph


def test_deadlocked_stg():
    stg = Stg(outputs=["A", "B"])
    stg.arc("A+", "B+")
    stg.arc("B+", "A+")  # circular wait, no token
    graph = explore(stg)
    assert not is_deadlock_free(graph)
    assert not is_live(graph)


def test_liveness_requires_all_transitions_fire():
    stg = Stg(outputs=["A", "B"])
    stg.arc("A-", "A+", marked=True)
    # B's transitions exist but can never fire (unmarked mutual wait)
    stg.arc("B+", "B-")
    stg.arc("B-", "B+")
    graph = explore(stg)
    assert not is_live(graph)


def test_csc_holds_for_simple_handshake():
    stg = Stg(inputs=["r"], outputs=["y"])
    stg.arc("r+", "y+")
    stg.arc("y+", "r-")
    stg.arc("r-", "y-")
    stg.arc("y-", "r+", marked=True)
    assert has_csc(explore(stg))


def test_csc_violation_detected():
    """The bare non-overlapping ring lacks CSC: the code (A,B)=(0,0)
    occurs both before A+ and before B+, enabling different outputs --
    an implementation needs internal state to disambiguate."""
    graph = explore(ring_stg())
    conflicts = csc_conflicts(graph)
    assert conflicts, "expected a CSC conflict on code (0, 0)"
    assert not has_csc(graph)


def test_flow_equivalence_of_safe_ring():
    assert check_flow_equivalence(ring_stg()) is None


def test_flow_equivalence_overwrite_detected():
    # upstream may re-open and capture again before downstream stored
    # the previous item (the 'overlapping' protocol of Figure 2.4)
    stg = Stg(outputs=["A", "B"])
    stg.arc("A+", "A-")
    stg.arc("A+", "B+")
    stg.arc("B+", "B-")
    stg.arc("B+", "A+", marked=True)
    violation = check_flow_equivalence(stg)
    assert violation is not None
    assert violation.kind == "overwrite"


def test_flow_equivalence_duplication_detected():
    # B free-runs: captures repeatedly without new data from A
    stg = Stg(outputs=["A", "B"])
    stg.arc("B+", "B-")
    stg.arc("B-", "B+", marked=True)
    stg.arc("B-", "A+")
    violation = check_flow_equivalence(stg)
    assert violation is not None
    assert violation.kind == "duplication"
