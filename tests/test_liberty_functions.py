"""Tests for liberty boolean function parsing and evaluation."""

import pytest

from repro.liberty import (
    FunctionParseError,
    compile_function,
    expr_inputs,
    expr_to_text,
    literal_count,
    parse_function,
)
from repro.liberty.functions import evaluate


@pytest.mark.parametrize(
    "text,values,expected",
    [
        ("A * B", {"A": 1, "B": 1}, 1),
        ("A * B", {"A": 1, "B": 0}, 0),
        ("A + B", {"A": 0, "B": 0}, 0),
        ("A + B", {"A": 0, "B": 1}, 1),
        ("!A", {"A": 0}, 1),
        ("A'", {"A": 1}, 0),
        ("A ^ B", {"A": 1, "B": 1}, 0),
        ("A ^ B", {"A": 1, "B": 0}, 1),
        ("!(A * B)", {"A": 1, "B": 1}, 0),
        ("(A B)", {"A": 1, "B": 1}, 1),  # juxtaposition AND
        ("(A * !S) + (B * S)", {"A": 0, "B": 1, "S": 1}, 1),
        ("(A * !S) + (B * S)", {"A": 0, "B": 1, "S": 0}, 0),
        ("1", {}, 1),
        ("0", {}, 0),
    ],
)
def test_evaluation(text, values, expected):
    fn = compile_function(text)
    assert fn(values) == expected


def test_unknown_propagation():
    fn = compile_function("A * B")
    assert fn({"A": 0, "B": None}) == 0  # controlled
    assert fn({"A": 1, "B": None}) is None
    fn_or = compile_function("A + B")
    assert fn_or({"A": 1, "B": None}) == 1
    assert fn_or({"A": 0, "B": None}) is None
    fn_xor = compile_function("A ^ B")
    assert fn_xor({"A": 1, "B": None}) is None


def test_inputs_extraction():
    expr = parse_function("((D * RN) * !SE) + (SI * SE)")
    assert expr_inputs(expr) == frozenset({"D", "RN", "SE", "SI"})


def test_double_negation_collapses():
    expr = parse_function("!!A")
    assert expr == parse_function("A")


def test_literal_count():
    assert literal_count(parse_function("(A * B) + (A * C) + (B * C)")) == 6
    assert literal_count(parse_function("!A")) == 1


def test_round_trip_through_text():
    for text in ["!(A * B)", "(A * !S) + (B * S)", "A ^ B ^ CI"]:
        expr = parse_function(text)
        again = parse_function(expr_to_text(expr))
        assert again == expr


@pytest.mark.parametrize("bad", ["A +", "(A", "A & B", ""])
def test_malformed_rejected(bad):
    with pytest.raises(FunctionParseError):
        parse_function(bad)


def test_evaluate_missing_input_is_unknown():
    expr = parse_function("A * B")
    assert evaluate(expr, {"A": 1}) is None
