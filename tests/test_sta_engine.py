"""Compiled STA engine: parity, caching and incremental re-timing.

The compiled backend's contract is *bit-identical* results against the
dict-based reference oracle -- not approximate equality.  These tests
pin that down on randomized DAG netlists (hypothesis), on wildcard
disables, and on the incremental wire-annotation path, plus the cache
behaviours the engine layers on top (net loads, compiled graphs,
characterised ladders).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.desync.delays import (
    _LADDER_MEMO,
    characterize_ladder,
)
from repro.engine.cache import ArtifactCache
from repro.liberty import core9_hs
from repro.liberty.model import OperatingCorner
from repro.netlist import Module, PortDirection
from repro.sta import (
    analyze,
    analyze_corners,
    annotate_wires,
    build_timing_graph,
    compiled_graph,
    compute_net_loads,
    invalidate_module,
    propagate,
    ssta_analyze,
    ssta_corners,
    ssta_propagate,
)
from repro.sta.graph import NET_NODE, _is_disabled

LIB = core9_hs()

#: (cell, input pins, output pin) palette for random netlists
GATES = [
    ("INVX1", ("A",), "Z"),
    ("BUFX1", ("A",), "Z"),
    ("AND2X1", ("A", "B"), "Z"),
    ("NAND2X1", ("A", "B"), "Z"),
    ("XOR2X1", ("A", "B"), "Z"),
    ("AOI21X1", ("A", "B", "C"), "Z"),
    ("NAND3X1", ("A", "B", "C"), "Z"),
]


def _assert_reports_identical(a, b):
    assert a.critical_delay == b.critical_delay
    assert a.critical_endpoint == b.critical_endpoint
    assert a.arrivals == b.arrivals
    assert [(p.node, p.arrival) for p in a.path] == [
        (p.node, p.arrival) for p in b.path
    ]
    assert a.endpoint_slacks == b.endpoint_slacks
    assert a.broken_edge_count == b.broken_edge_count


def _assert_ssta_identical(a, b):
    assert a.worst_endpoint == b.worst_endpoint
    assert (a.worst.mean, a.worst.global_sens, a.worst.local_var) == (
        b.worst.mean,
        b.worst.global_sens,
        b.worst.local_var,
    )
    assert a.arrivals == b.arrivals


@st.composite
def random_netlists(draw):
    """A random feed-forward gate-level module (a DAG by construction).

    Inputs and flip-flop outputs seed the net pool; every gate draws its
    inputs from earlier nets only.  Some nets get wire-cap/delay
    annotations so both delay sources are exercised.
    """
    module = Module("rand")
    nets = []
    for i in range(draw(st.integers(1, 3))):
        module.add_port(f"in{i}", PortDirection.INPUT)
        nets.append(f"in{i}")
    module.add_port("clk", PortDirection.INPUT)
    n_ffs = draw(st.integers(0, 3))
    for i in range(n_ffs):
        nets.append(f"ffq{i}")
    for g in range(draw(st.integers(1, 24))):
        cell, ins, out = draw(st.sampled_from(GATES))
        pins = {out: f"n{g}"}
        for pin in ins:
            pins[pin] = nets[draw(st.integers(0, len(nets) - 1))]
        module.add_instance(f"g{g}", cell, pins)
        nets.append(f"n{g}")
    for i in range(n_ffs):
        module.add_instance(
            f"ff{i}",
            "DFFX1",
            {
                "D": nets[draw(st.integers(0, len(nets) - 1))],
                "CK": "clk",
                "Q": f"ffq{i}",
            },
        )
    module.add_port("out", PortDirection.OUTPUT)
    module.add_instance("gout", "BUFX1", {"A": nets[-1], "Z": "out"})

    annotated = draw(
        st.lists(
            st.tuples(
                st.integers(0, len(nets) - 1),
                st.floats(0.0, 0.05),
                st.floats(0.0, 0.4),
            ),
            max_size=6,
        )
    )
    caps = {nets[i]: cap for i, cap, _ in annotated}
    delays = {nets[i]: delay for i, _, delay in annotated}
    if caps:
        module.attributes["net_wire_cap"] = caps
        module.attributes["net_wire_delay"] = delays
    return module


@given(random_netlists())
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_compiled_matches_reference_on_random_dags(module):
    for corner in ("best", "worst"):
        ref = analyze(module, LIB, corner, clock_period=4.0,
                      backend="reference")
        cmp_ = analyze(module, LIB, corner, clock_period=4.0,
                       backend="compiled")
        _assert_reports_identical(ref, cmp_)
        _assert_ssta_identical(
            ssta_analyze(module, LIB, corner, backend="reference"),
            ssta_analyze(module, LIB, corner, backend="compiled"),
        )


@given(random_netlists(), st.floats(0.0, 2.0))
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_propagate_backends_identical_on_one_graph(module, input_arrival):
    graph = build_timing_graph(module, LIB, "worst")
    _assert_reports_identical(
        propagate(graph, input_arrival, 3.0, backend="reference"),
        propagate(graph, input_arrival, 3.0, backend="compiled"),
    )
    _assert_ssta_identical(
        ssta_propagate(graph, backend="reference"),
        ssta_propagate(graph, backend="compiled"),
    )


def test_unknown_backend_rejected():
    module = Module("m")
    module.add_port("a", PortDirection.INPUT)
    with pytest.raises(ValueError, match="unknown STA backend"):
        analyze(module, LIB, backend="fast")


# ----------------------------------------------------------------------
# _is_disabled wildcard precedence
# ----------------------------------------------------------------------

def test_is_disabled_wildcards():
    exact = {("u1", "A", "Z")}
    assert _is_disabled(exact, "u1", "A", "Z")
    assert not _is_disabled(exact, "u1", "B", "Z")
    assert not _is_disabled(exact, "u2", "A", "Z")

    to_any = {("u1", None, "Z")}
    assert _is_disabled(to_any, "u1", "A", "Z")
    assert _is_disabled(to_any, "u1", "B", "Z")
    assert not _is_disabled(to_any, "u1", "A", "Y")

    from_any = {("u1", "A", None)}
    assert _is_disabled(from_any, "u1", "A", "Z")
    assert _is_disabled(from_any, "u1", "A", "Y")
    assert not _is_disabled(from_any, "u1", "B", "Z")

    all_arcs = {("u1", None, None)}
    assert _is_disabled(all_arcs, "u1", "A", "Z")
    assert _is_disabled(all_arcs, "u1", "B", "Y")
    assert not _is_disabled(all_arcs, "u2", "A", "Z")


@given(random_netlists(), st.integers(0, 5))
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_disable_parity(module, pick):
    instances = sorted(module.instances)
    name = instances[pick % len(instances)]
    disables = [(name, None, None)]
    _assert_reports_identical(
        analyze(module, LIB, disables=disables, backend="reference"),
        analyze(module, LIB, disables=disables, backend="compiled"),
    )


# ----------------------------------------------------------------------
# incremental re-timing
# ----------------------------------------------------------------------

def _ladder_module(n=12):
    module = Module("ladder")
    module.add_port("a", PortDirection.INPUT)
    module.add_port("z", PortDirection.OUTPUT)
    previous = "a"
    for i in range(n):
        out = "z" if i == n - 1 else f"n{i}"
        module.add_instance(
            f"u{i}", "AND2X1", {"A": previous, "B": "a", "Z": out}
        )
        previous = out
    return module


def test_incremental_retiming_matches_rebuild_and_reference():
    module = _ladder_module()
    compiled = compiled_graph(module, LIB)
    before = {
        corner: compiled.propagate(LIB.corner(corner).derate)
        for corner in ("best", "worst")
    }

    annotate_wires(
        module,
        {"n3": 0.02, "n7": 0.05},
        {"n3": 0.3, "n7": 0.1},
    )
    assert compiled_graph(module, LIB) is compiled, (
        "wire annotation must re-time in place, not rebuild"
    )

    for corner in ("best", "worst"):
        derate = LIB.corner(corner).derate
        incremental = compiled.propagate(derate)
        assert incremental.critical_delay > before[corner].critical_delay
        reference = analyze(module, LIB, corner, backend="reference")
        _assert_reports_identical(incremental, reference)

    # from-scratch compiled rebuild agrees too
    invalidate_module(module)
    for corner in ("best", "worst"):
        _assert_reports_identical(
            analyze(module, LIB, corner, backend="compiled"),
            analyze(module, LIB, corner, backend="reference"),
        )


def test_direct_attribute_write_still_detected():
    # writing the attributes without annotate_wires forfeits the
    # incremental path but must still invalidate via the fingerprint
    module = _ladder_module()
    first = analyze(module, LIB, "worst", backend="compiled")
    module.attributes["net_wire_delay"] = {"n1": 0.7}
    second = analyze(module, LIB, "worst", backend="compiled")
    assert second.critical_delay > first.critical_delay
    _assert_reports_identical(
        second, analyze(module, LIB, "worst", backend="reference")
    )


@given(
    random_netlists(),
    st.lists(
        st.tuples(st.integers(0, 30), st.floats(0.0, 0.04),
                  st.floats(0.0, 0.5)),
        min_size=1,
        max_size=5,
    ),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_incremental_retiming_parity_random(module, edits):
    compiled = compiled_graph(module, LIB)
    for corner in ("best", "worst"):
        compiled.propagate(LIB.corner(corner).derate)
    nets = sorted(module.nets)
    annotate_wires(
        module,
        {nets[i % len(nets)]: cap for i, cap, _ in edits},
        {nets[i % len(nets)]: delay for i, _, delay in edits},
    )
    for corner in ("best", "worst"):
        _assert_reports_identical(
            compiled.propagate(LIB.corner(corner).derate),
            analyze(module, LIB, corner, backend="reference"),
        )


# ----------------------------------------------------------------------
# net-node sharing for high-fanout multi-driver nets
# ----------------------------------------------------------------------

def _fanout_module(drivers=2, sinks=3):
    module = Module("fan")
    for d in range(drivers):
        module.add_port(f"a{d}", PortDirection.INPUT)
        module.add_instance(f"d{d}", "BUFX1", {"A": f"a{d}", "Z": "shared"})
    for s in range(sinks):
        module.add_port(f"o{s}", PortDirection.OUTPUT)
        module.add_instance(f"s{s}", "INVX1", {"A": "shared", "Z": f"o{s}"})
    return module


def test_net_node_sharing_reduces_edges():
    module = _fanout_module(drivers=2, sinks=3)
    graph = build_timing_graph(module, LIB)
    shared = (NET_NODE, "shared")
    assert shared in graph.adjacency
    legs = [
        e for edges in graph.adjacency.values() for e in edges
        if e.kind == "net" and (e.dst == shared or e.src == shared)
    ]
    assert len(legs) == 2 + 3  # vs 2 * 3 direct edges
    _assert_reports_identical(
        propagate(graph, backend="reference"),
        propagate(graph, backend="compiled"),
    )


def test_net_node_sharing_preserves_delays_and_wire_annotation():
    module = _fanout_module(drivers=2, sinks=3)
    plain = analyze(module, LIB, "worst", backend="reference")
    module.attributes["net_wire_delay"] = {"shared": 0.25}
    annotated = analyze(module, LIB, "worst", backend="reference")
    # the wire delay rides the driver legs exactly once per path
    derate = LIB.corner("worst").derate
    assert annotated.critical_delay == pytest.approx(
        plain.critical_delay + 0.25 * derate
    )
    _assert_reports_identical(
        annotated, analyze(module, LIB, "worst", backend="compiled")
    )


def test_single_driver_nets_not_shared():
    graph = build_timing_graph(_ladder_module(4), LIB)
    assert not any(node[0] == NET_NODE for node in graph.nodes())


# ----------------------------------------------------------------------
# caches: net loads, compiled graphs, ladders
# ----------------------------------------------------------------------

def test_net_loads_cached_until_mutation():
    module = _ladder_module()
    first = compute_net_loads(module, LIB)
    assert compute_net_loads(module, LIB) is first
    module.add_instance("extra", "INVX1", {"A": "n0", "Z": "x0"})
    second = compute_net_loads(module, LIB)
    assert second is not first
    assert second["n0"] > first["n0"]  # the new sink's pin cap


def test_net_loads_cache_sees_wire_cap_annotation():
    module = _ladder_module()
    first = compute_net_loads(module, LIB)
    module.attributes["net_wire_cap"] = {"n0": 0.5}
    second = compute_net_loads(module, LIB)
    assert second is not first
    assert second["n0"] == pytest.approx(
        first["n0"] - LIB.default_wire_cap + 0.5
    )


def test_compiled_graph_cached_and_invalidated():
    module = _ladder_module()
    compiled = compiled_graph(module, LIB)
    assert compiled_graph(module, LIB) is compiled
    # distinct views cache separately
    view = compiled_graph(module, LIB, instance_filter=frozenset(["u0"]))
    assert view is not compiled
    assert compiled_graph(module, LIB) is compiled
    module.add_instance("extra", "INVX1", {"A": "n0", "Z": "x0"})
    assert compiled_graph(module, LIB) is not compiled


def test_ladder_memoized_in_process():
    _LADDER_MEMO.clear()
    first = characterize_ladder(LIB, "worst", max_length=10)
    second = characterize_ladder(LIB, "worst", max_length=10)
    assert first.rise_delays == second.rise_delays
    # defensive copies: callers cannot corrupt the memo
    second.rise_delays[0] = -1.0
    assert characterize_ladder(LIB, "worst", max_length=10).rise_delays[0] \
        == first.rise_delays[0]
    # a different corner is a different entry with rescaled delays
    best = characterize_ladder(LIB, "best", max_length=10)
    assert best.rise_delays[0] < first.rise_delays[0]


def test_ladder_disk_cache_roundtrip(tmp_path):
    cache = ArtifactCache(str(tmp_path))
    _LADDER_MEMO.clear()
    first = characterize_ladder(LIB, "worst", max_length=8, cache=cache)
    assert cache.stats.stores == 1
    _LADDER_MEMO.clear()  # simulate a new process
    second = characterize_ladder(LIB, "worst", max_length=8, cache=cache)
    assert cache.stats.hits == 1
    assert second.rise_delays == first.rise_delays


def test_ladder_matches_reference_backend():
    _LADDER_MEMO.clear()
    for corner in ("best", "worst"):
        compiled = characterize_ladder(LIB, corner, max_length=20)
        reference = characterize_ladder(
            LIB, corner, max_length=20, backend="reference", memoize=False
        )
        assert compiled.rise_delays == reference.rise_delays


# ----------------------------------------------------------------------
# multi-corner sweeps: serial == parallel
# ----------------------------------------------------------------------

def _four_corner_library():
    library = core9_hs()
    library.corners["typical"] = OperatingCorner("typical", 1.00, 1.00, 25.0)
    library.corners["cold"] = OperatingCorner("cold", 0.85, 1.05, -40.0)
    return library


def test_analyze_corners_serial_parallel_identical():
    library = _four_corner_library()
    module = _ladder_module()
    serial = analyze_corners(module, library, clock_period=6.0, jobs=1)
    pooled = analyze_corners(module, library, clock_period=6.0, jobs=4)
    assert sorted(serial) == sorted(library.corners) == sorted(pooled)
    for corner in serial:
        _assert_reports_identical(serial[corner], pooled[corner])
    for corner, report in serial.items():
        _assert_reports_identical(
            report,
            analyze(module, library, corner, clock_period=6.0,
                    backend="reference"),
        )


def test_ssta_corners_serial_parallel_identical():
    library = _four_corner_library()
    module = _ladder_module()
    serial = ssta_corners(module, library, jobs=1)
    pooled = ssta_corners(module, library, jobs=4)
    for corner in serial:
        _assert_ssta_identical(serial[corner], pooled[corner])
        _assert_ssta_identical(
            serial[corner],
            ssta_analyze(module, library, corner, backend="reference"),
        )
