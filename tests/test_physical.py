"""Physical-design model tests: placement, routing, CTS, backend."""

import pytest

from repro.designs import figure22_circuit, pipeline3
from repro.liberty import core9_hs
from repro.netlist import Module, PortDirection
from repro.physical import (
    enable_nets_of,
    in_place_optimize,
    net_hpwl,
    place,
    route,
    run_backend,
    run_cts,
    synthesize_tree,
    total_wirelength,
)
from repro.sta import analyze, compute_net_loads


@pytest.fixture(scope="module")
def lib():
    return core9_hs()


def test_placement_geometry(lib):
    mod = figure22_circuit(lib)
    placement = place(mod, lib, target_utilization=0.90)
    assert len(placement.locations) == len(mod.instances)
    assert placement.core_area > placement.cell_area
    assert 0.80 <= placement.utilization <= 0.99
    for x, y in placement.locations.values():
        assert 0 <= x <= placement.core_width + 1e-6
        assert 0 <= y <= placement.core_height + 1e-6


def test_lower_utilization_grows_core(lib):
    mod = figure22_circuit(lib)
    tight = place(mod, lib, target_utilization=0.95)
    loose = place(mod, lib, target_utilization=0.70)
    assert loose.core_area > tight.core_area
    assert abs(loose.cell_area - tight.cell_area) < 1e-6


def test_hpwl_and_wirelength(lib):
    mod = pipeline3(lib)
    placement = place(mod, lib)
    wl = total_wirelength(mod, placement)
    assert wl > 0
    some_net = next(iter(mod.nets))
    assert net_hpwl(mod, placement, some_net) >= 0


def test_routing_annotates_module(lib):
    mod = pipeline3(lib)
    placement = place(mod, lib)
    routing = route(mod, placement)
    assert routing.total_wirelength > 0
    assert "net_wire_cap" in mod.attributes
    assert "net_wire_delay" in mod.attributes
    # STA gets slower with parasitics than with zero wires
    zero_wire = mod.clone()
    zero_wire.attributes["net_wire_cap"] = {n: 0.0 for n in mod.nets}
    zero_wire.attributes["net_wire_delay"] = {}
    assert (
        analyze(mod, lib).critical_delay
        > analyze(zero_wire, lib).critical_delay
    )


def test_cts_bounds_clock_fanout(lib):
    mod = Module("m")
    mod.add_port("clk", PortDirection.INPUT)
    mod.add_port("d", PortDirection.INPUT)
    for i in range(100):
        mod.add_instance(
            f"r{i}", "DFFX1", {"D": "d", "CK": "clk", "Q": f"q{i}"}
        )
    tree = synthesize_tree(mod, lib, "clk", max_fanout=12)
    assert tree.sink_count == 100
    assert tree.buffers
    assert tree.levels >= 1
    # no net in the tree exceeds the fanout bound by much
    loads = compute_net_loads(mod, lib)
    buf_cap = lib.cell("CKBUFX4").pins["A"].capacitance
    for net, load in loads.items():
        assert load < 16 * 0.02 + 1  # sane bound


def test_enable_net_discovery(lib):
    mod = pipeline3(lib)
    nets = enable_nets_of(mod, lib)
    assert "clk" in nets


def test_ipo_fixes_max_cap_violation(lib):
    mod = Module("m")
    mod.add_port("a", PortDirection.INPUT)
    mod.add_port("y", PortDirection.OUTPUT)
    mod.add_instance("drv", "INVX1", {"A": "a", "Z": "big"})
    for i in range(40):
        mod.add_instance(f"u{i}", "INVX1", {"A": "big", "Z": f"n{i}"})
    mod.add_instance("last", "BUFX1", {"A": "n0", "Z": "y"})
    placement = place(mod, lib)
    routing = route(mod, placement)
    changes = in_place_optimize(mod, lib, routing)
    assert changes >= 1
    # driver was upsized or the net was split
    assert mod.instances["drv"].cell != "INVX1" or any(
        name.startswith("ipo_buf") for name in mod.instances
    )


def test_ipo_respects_dont_touch(lib):
    mod = Module("m")
    mod.add_port("a", PortDirection.INPUT)
    mod.add_instance("drv", "INVX1", {"A": "a", "Z": "big"})
    mod.instances["drv"].attributes["dont_touch"] = True
    for i in range(40):
        mod.add_instance(f"u{i}", "INVX1", {"A": "big", "Z": f"n{i}"})
    placement = place(mod, lib)
    routing = route(mod, placement)
    in_place_optimize(mod, lib, routing)
    assert mod.instances["drv"].cell == "INVX1"


def test_full_backend_report(lib):
    mod = figure22_circuit(lib)
    result = run_backend(mod, lib, target_utilization=0.90)
    report = result.report
    assert report.cells >= 40
    assert report.core_size > report.standard_cell_area
    assert 0.5 < report.utilization <= 0.99
    assert report.wirelength > 0
    assert mod.check() == []
