"""Complex-gate synthesis (petrify-lite) tests."""

import itertools

import pytest

from repro.liberty.functions import evaluate, expr_to_text
from repro.stg import (
    Stg,
    SynthesisError,
    csc_conflicts,
    explore,
    synthesize,
    verify_implementation,
)
from repro.stg.synthesis import cubes_to_expr, minimal_cover, prime_implicants


# ----------------------------------------------------------------------
# Quine-McCluskey units
# ----------------------------------------------------------------------

def test_prime_implicants_classic_example():
    # f = sum m(0,1,2,5,6,7) over 3 vars: classic two-cover function
    primes = prime_implicants({0, 1, 2, 5, 6, 7}, set(), 3)
    assert "00-" in primes and "1-1" in primes


def test_minimal_cover_uses_dont_cares():
    # ON = {1}, DC = {3}: with x1 don't-care, a single literal suffices
    cover = minimal_cover({1}, {3}, 2)
    assert cover == ["-1"]


def test_cover_of_tautology():
    cover = minimal_cover({0, 1, 2, 3}, set(), 2)
    expr = cubes_to_expr(cover, ["a", "b"])
    for a, b in itertools.product((0, 1), repeat=2):
        assert evaluate(expr, {"a": a, "b": b}) == 1


def test_cover_of_empty_on_set():
    assert minimal_cover(set(), {1, 2}, 2) == []
    expr = cubes_to_expr([], ["a", "b"])
    assert evaluate(expr, {"a": 1, "b": 1}) == 0


# ----------------------------------------------------------------------
# STG -> complex gates
# ----------------------------------------------------------------------

def handshake_stg():
    """Passive 4-phase handshake: y answers r."""
    stg = Stg(inputs=["r"], outputs=["y"])
    stg.arc("r+", "y+")
    stg.arc("y+", "r-")
    stg.arc("r-", "y-")
    stg.arc("y-", "r+", marked=True)
    return stg


def test_synthesize_handshake_buffer():
    impl = synthesize(handshake_stg())
    assert set(impl.functions) == {"y"}
    # y simply follows r
    text = expr_to_text(impl.functions["y"])
    assert text.replace(" ", "") in ("r", "(r)")
    assert verify_implementation(impl)


def test_synthesize_c_element_stg():
    """Two requests joined: y = C(a, b)."""
    stg = Stg(inputs=["a", "b"], outputs=["y"])
    for req in ("a", "b"):
        stg.arc(f"{req}+", "y+")
        stg.arc("y+", f"{req}-")
        stg.arc(f"{req}-", "y-")
        stg.arc("y-", f"{req}+", marked=True)
    impl = synthesize(stg)
    assert verify_implementation(impl)
    expr = impl.functions["y"]
    # the function must behave as a C-element over reachable codes
    for a, b, y in itertools.product((0, 1), repeat=3):
        value = evaluate(expr, {"a": a, "b": b, "y": y})
        if a == b:
            assert value == a
        # mixed inputs on reachable codes hold the state
        elif (a, b, y) in {(1, 0, 0), (0, 1, 0), (1, 0, 1), (0, 1, 1)}:
            assert value in (y, None) or value == y


def test_synthesis_rejects_csc_violation():
    """The bare non-overlapping ring has a CSC conflict at (0,0)."""
    stg = Stg(outputs=["A", "B"])
    stg.arc("A-", "B+")
    stg.arc("B-", "A+", marked=True)
    graph = explore(stg)
    assert csc_conflicts(graph)
    with pytest.raises(SynthesisError):
        synthesize(stg, graph)


def test_synthesized_controller_stg():
    """The shipped latch-controller STG synthesizes and verifies."""
    from repro.desync import controller_stg

    impl = synthesize(controller_stg())
    assert set(impl.functions) == {"x", "y"}
    assert verify_implementation(impl)
    # x depends on the request and on itself or y (state holding)
    from repro.liberty.functions import expr_inputs

    x_inputs = expr_inputs(impl.functions["x"])
    assert "ri" in x_inputs
