"""Tests for the bit-parallel lane simulator and the sim-backed MC study.

The discipline mirrors the other kernels: the scalar AST ``evaluate()``
and the per-chip compiled event kernel are the oracles, and the lane
kernel must agree bit-for-bit --

- lane-packed evaluation of random Liberty expressions equals per-lane
  scalar evaluation for *all* 3-state input combinations (x-plane
  propagation included), property-based plus exhaustive;
- vectorized FF machines under per-lane reset/enable masks track solo
  event-kernel runs of each lane's stimulus;
- a DLX lane batch reproduces solo ``kernel="compiled"`` captures in
  every lane (the parity oracle from the acceptance criteria);
- ``run_study(backend="sim")`` is deterministic and carries the same
  headline fraction as the analytic model;
- satellite regressions: empty-histogram fix, ``percentile``,
  ``yield_vs_margin``, ``topo_order`` cycle detection.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.designs import DlxMemories, assemble, dlx_core
from repro.designs.dlx_env import dlx_respond
from repro.designs.simple import pipeline3
from repro.liberty import core9_hs
from repro.liberty.functions import (
    Const,
    Not,
    Op,
    Var,
    compile_function_lanes,
    compile_function_lanes_indexed,
    evaluate,
    expr_inputs,
    expr_to_text,
    pack_lanes,
    unpack_lane,
    unpack_lanes,
)
from repro.netlist import ConnectivityIndex, Module, PortDirection
from repro.sim import (
    BatchSimulator,
    SimulationError,
    Simulator,
    SyncTestbench,
    assert_lane_parity,
    batch_capture_run,
    initialize_registers,
    solo_capture_sequences,
)
from repro.sim.batch import _LibraryCellInfo
from repro.variability import (
    SimBackendConfig,
    VariabilityModel,
    VariabilityStudy,
    lane_batches,
    run_study,
)

LIB = core9_hs()
DOMAIN = (0, 1, None)


# ----------------------------------------------------------------------
# lane evaluators vs the scalar oracle
# ----------------------------------------------------------------------

_NAMES = ("a", "b", "c", "d")


def _exprs(depth):
    if depth == 0:
        return st.one_of(
            st.sampled_from([Var(n) for n in _NAMES]),
            st.sampled_from([Const(0), Const(1)]),
        )
    sub = _exprs(depth - 1)
    return st.one_of(
        sub,
        st.builds(Not, sub),
        st.builds(
            lambda kind, args: Op(kind, tuple(args)),
            st.sampled_from(["and", "or", "xor"]),
            st.lists(sub, min_size=2, max_size=3),
        ),
    )


def _assert_lane_oracle(expr):
    """Every 3-state combo, packed across lanes, equals scalar evaluate."""
    text = expr_to_text(expr)
    names = sorted(expr_inputs(expr))
    fn = compile_function_lanes(text)
    slots = tuple(names)
    fn_indexed = compile_function_lanes_indexed(text, slots)
    combos = list(itertools.product(DOMAIN, repeat=len(names)))
    # chunk so lane counts beyond 64 are exercised only when needed
    for start in range(0, len(combos), 64):
        chunk = combos[start : start + 64]
        lanes = len(chunk)
        mask = (1 << lanes) - 1
        planes = {
            name: pack_lanes([combo[i] for combo in chunk])
            for i, name in enumerate(names)
        }
        value_plane, x_plane = fn(planes, mask)
        assert value_plane & x_plane == 0, "plane invariant broken"
        got = unpack_lanes((value_plane, x_plane), lanes)
        want = [evaluate(expr, dict(zip(names, combo))) for combo in chunk]
        assert got == want
        env = []
        for name in slots:
            env.extend(planes[name])
        assert fn_indexed(env, mask) == (value_plane, x_plane)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(_exprs(3))
def test_lane_eval_matches_scalar_oracle(expr):
    _assert_lane_oracle(expr)


def test_lane_eval_core9_functions_exhaustive():
    """Every function in the real library, every 3-state combination."""
    for cell in LIB.cells.values():
        for pin in cell.pins.values():
            if pin.function:
                from repro.liberty.functions import parse_function

                _assert_lane_oracle(parse_function(pin.function))


def test_lane_eval_x_dominance():
    """Definite values kill unknowns exactly as the scalar rules say."""
    fn_and = compile_function_lanes("A * B")
    fn_or = compile_function_lanes("A + B")
    # lane 0: A=0, B=X -> 0;  lane 1: A=1, B=X -> X
    planes = {"A": pack_lanes([0, 1]), "B": pack_lanes([None, None])}
    assert unpack_lanes(fn_and(planes, 3), 2) == [0, None]
    # lane 0: A=0, B=X -> X;  lane 1: A=1, B=X -> 1
    assert unpack_lanes(fn_or(planes, 3), 2) == [None, 1]
    # missing pin reads as all-lanes-X
    assert unpack_lanes(fn_and({"A": pack_lanes([1, 0])}, 3), 2) == [None, 0]


def test_pack_unpack_roundtrip():
    values = [0, 1, None, 1, 0, None, None, 1]
    planes = pack_lanes(values)
    assert unpack_lanes(planes, len(values)) == values
    assert [unpack_lane(planes, i) for i in range(len(values))] == values


# ----------------------------------------------------------------------
# topo order
# ----------------------------------------------------------------------


def _chain_module():
    m = Module("chain")
    m.add_port("clk", PortDirection.INPUT)
    m.add_port("a", PortDirection.INPUT)
    m.add_port("y", PortDirection.OUTPUT)
    m.add_instance("g2", "INVX1", {"A": "n1", "Z": "n2"})
    m.add_instance("g1", "INVX1", {"A": "a", "Z": "n1"})
    m.add_instance("ff", "DFFX1", {"D": "n2", "CK": "clk", "Q": "q"})
    m.add_instance("g3", "INVX1", {"A": "q", "Z": "y"})
    return m


def test_topo_order_levelizes_comb_cloud():
    m = _chain_module()
    index = ConnectivityIndex(m, _LibraryCellInfo(LIB))
    order = index.topo_order(sources=["ff"])
    assert "ff" not in order
    assert order.index("g1") < order.index("g2")
    assert set(order) == {"g1", "g2", "g3"}


def test_topo_order_detects_combinational_cycle():
    m = Module("loop")
    m.add_instance("i1", "INVX1", {"A": "x", "Z": "y"})
    m.add_instance("i2", "INVX1", {"A": "y", "Z": "x"})
    index = ConnectivityIndex(m, _LibraryCellInfo(LIB))
    with pytest.raises(ValueError, match="combinational cycle"):
        index.topo_order()


# ----------------------------------------------------------------------
# batch kernel vs the event kernel
# ----------------------------------------------------------------------


def test_pipeline_per_lane_stimulus_parity():
    """Different data in every lane == one solo run per lane."""
    module = pipeline3(LIB, width=4)
    lanes = 6
    din = [f"din[{i}]" for i in range(4)]
    lane_words = [
        [3, 9, 14, 0, 7, 5, 1, 12],
        [0, 0, 15, 15, 8, 8, 2, 2],
        [1, 2, 3, 4, 5, 6, 7, 8],
        [15, 14, 13, 12, 11, 10, 9, 8],
        [5, 5, 5, 5, 5, 5, 5, 5],
        [10, 0, 10, 0, 10, 0, 10, 0],
    ]

    batch = BatchSimulator(module, LIB, lanes=lanes)
    initialize_registers(batch, 0)

    def batch_stim(cycle):
        return {
            bit: [
                (lane_words[lane][cycle % 8] >> i) & 1 for lane in range(lanes)
            ]
            for i, bit in enumerate(din)
        }

    SyncTestbench(batch, clock="clk").run_cycles(10, batch_stim)

    for lane in range(lanes):
        def solo_factory(sim, lane=lane):
            def stim(cycle):
                word = lane_words[lane][cycle % 8]
                return {bit: (word >> i) & 1 for i, bit in enumerate(din)}

            return stim

        solo = solo_capture_sequences(
            module, LIB, cycles=10, stimulus_factory=solo_factory
        )
        assert_lane_parity(batch, lane, solo)


def _ff_mask_module():
    """One async-clear FF and one sync-reset FF sharing clock and data."""
    m = Module("ffmask")
    for name in ("clk", "d", "cdn", "rn"):
        m.add_port(name, PortDirection.INPUT)
    m.add_port("qa", PortDirection.OUTPUT)
    m.add_port("qs", PortDirection.OUTPUT)
    m.add_instance(
        "ff_async", "DFFCX1", {"D": "d", "CK": "clk", "CDN": "cdn", "Q": "qa"}
    )
    m.add_instance(
        "ff_sync", "DFFRX1", {"D": "d", "CK": "clk", "RN": "rn", "Q": "qs"}
    )
    return m


#: per-lane (d, cdn, rn) waveforms over 8 cycles: lane 0 runs free,
#: lane 1 holds async clear mid-run, lane 2 pulses the sync reset,
#: lane 3 inverts the data pattern
_FF_LANES = [
    {"d": [1, 0, 1, 1, 0, 1, 0, 1], "cdn": [1] * 8, "rn": [1] * 8},
    {"d": [1, 1, 1, 1, 1, 1, 1, 1], "cdn": [1, 1, 0, 0, 1, 1, 1, 1],
     "rn": [1] * 8},
    {"d": [1, 0, 1, 0, 1, 0, 1, 0], "cdn": [1] * 8,
     "rn": [1, 0, 0, 1, 1, 1, 0, 1]},
    {"d": [0, 1, 0, 0, 1, 0, 1, 0], "cdn": [1] * 8, "rn": [1] * 8},
]


def test_ff_reset_enable_lane_masks():
    """One machine evaluation clocks, clears and resets different lanes."""
    module = _ff_mask_module()
    lanes = len(_FF_LANES)
    cycles = 8

    batch = BatchSimulator(module, LIB, lanes=lanes)
    initialize_registers(batch, 0)
    bench = SyncTestbench(batch, clock="clk")

    solos = []
    for lane in range(lanes):
        sim = Simulator(module, LIB)
        initialize_registers(sim, 0)
        solos.append((sim, SyncTestbench(sim, clock="clk", period=8.0)))

    def batch_stim(cycle):
        return {
            port: [_FF_LANES[lane][port][cycle] for lane in range(lanes)]
            for port in ("d", "cdn", "rn")
        }

    for cycle in range(cycles):
        bench.run_cycles(1, batch_stim)
        for lane, (sim, solo_bench) in enumerate(solos):
            solo_bench.run_cycles(
                1,
                lambda c, lane=lane: {
                    port: _FF_LANES[lane][port][c]
                    for port in ("d", "cdn", "rn")
                },
            )
            # state trajectory must agree in every lane, every cycle --
            # including lanes held in async clear or sync reset
            for net in ("qa", "qs"):
                assert batch.value(net, lane) == sim.value(net), (
                    f"cycle {cycle} lane {lane} net {net}"
                )

    # lanes that never assert the async clear also agree on the exact
    # capture sequences (async-held lanes differ by design: the event
    # kernel logs one capture per *event*, the batch one per boundary)
    for lane in (0, 2, 3):
        solo = solos[lane][0].capture_sequences()
        assert batch.capture_sequences(lane) == solo


def test_dlx_lane_parity_oracle():
    """Acceptance criterion: every DLX lane == a solo compiled run."""
    program = assemble([
        ("addi", 1, 0, 5), ("addi", 2, 0, 7), ("nop",), ("nop",),
        ("add", 3, 1, 2), ("sub", 4, 2, 1), ("nop",), ("nop",),
    ])
    module = dlx_core(LIB, registers=8, multiplier=False, width=16)
    bits = module.port_bits()

    def stim_factory(sim):
        respond = dlx_respond(DlxMemories(program), width=16)

        def stimulus(cycle):
            return respond(cycle, {b: sim.net_values.get(b) for b in bits})

        return stimulus

    lanes = 16
    batch = batch_capture_run(
        module, LIB, cycles=12, lanes=lanes, stimulus_factory=stim_factory
    )
    solo = solo_capture_sequences(
        module, LIB, cycles=12, stimulus_factory=stim_factory, period=12.0
    )
    assert solo, "oracle run produced no captures"
    for lane in range(lanes):
        assert_lane_parity(batch, lane, solo)


def test_batch_rejects_bad_inputs():
    module = pipeline3(LIB, width=2)
    batch = BatchSimulator(module, LIB, lanes=4)
    with pytest.raises(SimulationError, match="4 lanes"):
        batch.set_input("din[0]", [0, 1])  # wrong per-lane length
    with pytest.raises(SimulationError, match="unknown input"):
        batch.set_input("no_such_net", 1)
    with pytest.raises(SimulationError, match="lane count"):
        BatchSimulator(module, LIB, lanes=0)


def test_batch_rejects_multi_driven_nets():
    m = Module("contention")
    m.add_port("a", PortDirection.INPUT)
    m.add_instance("i1", "INVX1", {"A": "a", "Z": "y"})
    m.add_instance("i2", "INVX1", {"A": "a", "Z": "y"})
    with pytest.raises(SimulationError, match="driven by both"):
        BatchSimulator(m, LIB, lanes=2)


# ----------------------------------------------------------------------
# variability satellites
# ----------------------------------------------------------------------


def test_histogram_empty_study_returns_empty():
    # regression: used to raise ValueError (min() of empty sequence)
    assert VariabilityStudy(sync_period=10.0, desync_periods=[]).histogram() == []


def test_percentile_and_yield_vs_margin():
    study = VariabilityStudy(
        sync_period=10.0,
        desync_periods=[6.0, 7.0, 8.0, 9.0, 11.0],
        margin=0.0,
    )
    assert study.percentile(0) == 6.0
    assert study.percentile(100) == 11.0
    assert study.percentile(50) == 8.0
    assert study.percentile(25) == pytest.approx(7.0)
    with pytest.raises(ValueError):
        study.percentile(101)
    with pytest.raises(ValueError):
        VariabilityStudy(10.0, []).percentile(50)
    table = study.yield_vs_margin([0.0, 0.30])
    assert table[0] == {"margin": 0.0, "yield": 0.8}
    # +30%: 6->7.8, 7->9.1 still beat 10.0; 8->10.4 does not
    assert table[1] == {"margin": 0.30, "yield": 0.4}
    # margin sweep rebases by the study's own margin
    margined = VariabilityStudy(
        sync_period=10.0, desync_periods=[9.9], margin=0.10
    )
    assert margined.yield_vs_margin([0.0])[0]["yield"] == 1.0


def test_lane_batches_shapes():
    chips = VariabilityModel().sample_chips(10, seed=1)
    batches = lane_batches(chips, 4)
    assert [len(b) for b in batches] == [4, 4, 2]
    assert [c for b in batches for c in b] == chips
    with pytest.raises(ValueError):
        lane_batches(chips, 0)


def test_run_study_sim_backend_deterministic_and_oracle_checked():
    module = pipeline3(LIB, width=4)
    din = [f"din[{i}]" for i in range(4)]

    def stim_factory(sim):
        def stim(cycle):
            word = (3 * cycle + 1) % 16
            return {bit: (word >> i) & 1 for i, bit in enumerate(din)}

        return stim

    config = SimBackendConfig(
        module=module,
        library=LIB,
        stimulus_factory=stim_factory,
        cycles=6,
        oracle_chips=2,
    )
    model = VariabilityModel()
    study = run_study(
        10.0, model, n_chips=24, margin=0.10,
        backend="sim", sim=config, lanes=8,
    )
    assert study.backend == "sim"
    assert study.margin == 0.10
    assert len(study.desync_periods) == 24
    assert study.sim_stats["batches"] == 3.0
    assert study.sim_stats["chips_per_second"] > 0
    # sim-backed periods track the analytic model's factors: same sync
    # threshold, per-die spread driven by the same sampled chips
    assert study.sync_period == pytest.approx(10.0 * model.worst_case_factor())
    assert 0.5 < study.fraction_desync_faster <= 1.0
    again = run_study(
        10.0, model, n_chips=24, margin=0.10,
        backend="sim", sim=config, lanes=8,
    )
    assert again.desync_periods == study.desync_periods


def test_run_study_backend_validation():
    with pytest.raises(ValueError, match="unknown study backend"):
        run_study(10.0, backend="spice")
    with pytest.raises(ValueError, match="SimBackendConfig"):
        run_study(10.0, backend="sim")


def test_run_study_model_backend_unchanged():
    study = run_study(10.0, VariabilityModel(), n_chips=200, margin=0.10)
    assert study.backend == "model"
    assert study.sim_stats is None
    assert len(study.desync_periods) == 200
    assert 0.5 < study.fraction_desync_faster <= 1.0
