"""Verilog parser/writer round-trip tests."""

import pytest

from repro.netlist import (
    PortDirection,
    VerilogParseError,
    parse_verilog,
    write_verilog,
)

SIMPLE = """
// a comment
module top (a, b, y);
  input a, b;
  output y;
  wire n1;
  AND2X1 u1 (.A(a), .B(b), .Z(n1));
  INVX1 u2 (.A(n1), .Z(y));
endmodule
"""


def test_parse_simple_module():
    netlist = parse_verilog(SIMPLE)
    top = netlist.top
    assert top.name == "top"
    assert set(top.ports) == {"a", "b", "y"}
    assert top.ports["a"].direction == PortDirection.INPUT
    assert top.instances["u1"].cell == "AND2X1"
    assert top.net_of("u1", "Z") == "n1"
    assert top.net_of("u2", "Z") == "y"


def test_parse_ansi_ports_and_vectors():
    text = """
    module m (input [3:0] d, output q);
      DFFX1 r0 (.D(d[0]), .CK(q), .Q(q));
    endmodule
    """
    top = parse_verilog(text).top
    assert top.ports["d"].width == 4
    assert "d[3]" in top.nets
    assert top.net_of("r0", "D") == "d[0]"


def test_parse_vector_wire_declaration():
    text = """
    module m (a, y);
      input a; output y;
      wire [1:0] w;
      BUFX1 u0 (.A(a), .Z(w[1]));
      BUFX1 u1 (.A(w[1]), .Z(y));
    endmodule
    """
    top = parse_verilog(text).top
    assert "w[0]" in top.nets and "w[1]" in top.nets


def test_parse_constants_become_constant_nets():
    text = """
    module m (y);
      output y;
      AND2X1 u (.A(1'b1), .B(1'b0), .Z(y));
    endmodule
    """
    top = parse_verilog(text).top
    assert top.net_of("u", "A") == "__const1__"
    assert top.net_of("u", "B") == "__const0__"


def test_parse_assign_alias_and_constant():
    text = """
    module m (a, y);
      input a; output y;
      wire n;
      assign y = n;
      assign n = a;
      wire t;
      assign t = 1'b1;
    endmodule
    """
    top = parse_verilog(text).top
    assert ("y", "n") in top.assigns
    assert ("t", "__const1__") in top.assigns


def test_parse_escaped_identifiers():
    text = r"""
    module m (a, y);
      input a; output y;
      wire \fancy.net[1] ;
      BUFX1 \u$0 (.A(a), .Z(\fancy.net[1] ));
      BUFX1 u1 (.A(\fancy.net[1] ), .Z(y));
    endmodule
    """
    top = parse_verilog(text).top
    assert "fancy.net[1]" in top.nets
    assert "u$0" in top.instances


def test_parse_unconnected_pin():
    text = """
    module m (a, y);
      input a; output y;
      DFFX1 r (.D(a), .CK(a), .Q(y), .QN());
    endmodule
    """
    top = parse_verilog(text).top
    assert "QN" not in top.instances["r"].pins


def test_behavioural_input_rejected():
    text = "module m (y); output y; always @(posedge c) y = 1; endmodule"
    with pytest.raises(VerilogParseError):
        parse_verilog(text)


def test_concatenation_rejected():
    text = """
    module m (a, y);
      input a; output y;
      BUFX1 u (.A({a, a}), .Z(y));
    endmodule
    """
    with pytest.raises(VerilogParseError):
        parse_verilog(text)


def test_round_trip_preserves_structure():
    netlist = parse_verilog(SIMPLE)
    text = write_verilog(netlist)
    again = parse_verilog(text)
    top_a, top_b = netlist.top, again.top
    assert set(top_a.ports) == set(top_b.ports)
    assert set(top_a.instances) == set(top_b.instances)
    for name, inst in top_a.instances.items():
        assert again.top.instances[name].pins == inst.pins


def test_round_trip_with_vectors_and_constants():
    text = """
    module m (input [2:0] d, output [1:0] q);
      AND2X1 u0 (.A(d[0]), .B(d[1]), .Z(q[0]));
      OR2X1 u1 (.A(d[2]), .B(1'b0), .Z(q[1]));
    endmodule
    """
    netlist = parse_verilog(text)
    again = parse_verilog(write_verilog(netlist))
    assert again.top.ports["d"].width == 3
    assert again.top.net_of("u1", "B") == "__const0__"


def test_multiple_modules_and_top_is_last_written():
    text = """
    module sub (a, z); input a; output z;
      BUFX1 u (.A(a), .Z(z));
    endmodule
    module top (a, z); input a; output z;
      sub s0 (.a(a), .z(z));
    endmodule
    """
    netlist = parse_verilog(text)
    assert set(netlist.modules) == {"sub", "top"}
    netlist.set_top("top")
    out = write_verilog(netlist)
    assert out.rstrip().endswith("endmodule")
    assert out.index("module sub") < out.index("module top")
