"""Simulation-level observability: VCD waveforms, handshake probe,
stall attribution, deadlock watchdog, windowed activity (PR 5).

The heavyweight fixtures (a reduced desynchronized DLX) are module
scoped; everything else runs on the counter / pipeline3 designs.
"""

import json

import pytest

from repro.cli import EXIT_OK, main
from repro.desync import Drdesync
from repro.designs import counter, dlx_core, pipeline3
from repro.flow import observe_handshake
from repro.liberty import core9_hs
from repro.netlist import Netlist, save_verilog
from repro.obs import (
    NS_BUCKETS,
    VcdWriter,
    handshake_trace_events,
    read_vcd,
    write_handshake_trace,
)
from repro.obs.metrics import Histogram
from repro.perf import measure_effective_period
from repro.power import (
    WindowedActivityRecorder,
    activity_from_simulation,
    activity_from_vcd,
    activity_from_window,
    estimate_power,
)
from repro.sim import (
    DeadlockWatchdog,
    HandshakeProbe,
    HandshakeTestbench,
    Simulator,
    handshake_report,
)


@pytest.fixture(scope="module")
def lib():
    return core9_hs()


@pytest.fixture(scope="module")
def counter_desync(lib):
    return Drdesync(lib).run(counter(lib, width=6))


@pytest.fixture(scope="module")
def pipeline_run(lib):
    """Probed pipeline3 handshake run: (result, simulator, probe)."""
    result = Drdesync(lib).run(pipeline3(lib))
    sim = Simulator(result.module, lib)
    probe = HandshakeProbe(sim, result)
    bench = HandshakeTestbench(
        sim, result.network.env_ports, result.network.reset_net
    )
    stim = lambda k: {f"din[{i}]": (k >> i) & 1 for i in range(8)}
    bench.apply_reset(0, initial_inputs=stim(0))
    bench.run_items(11, stim, first_item=1)
    return result, sim, probe


@pytest.fixture(scope="module")
def dlx_desync(lib):
    module = dlx_core(lib, registers=8, multiplier=False, width=16)
    return Drdesync(lib).run(module)


def region_masters(result, region):
    """Master latch instances of one region."""
    return sorted(
        name
        for name in result.region_map.regions[region].instances
        if name.endswith("_lm")
    )


def run_counter(result, lib, kernel="compiled", duration=120.0):
    sim = Simulator(result.module, lib, kernel=kernel)
    bench = HandshakeTestbench(
        sim, result.network.env_ports, result.network.reset_net
    )
    bench.apply_reset(0)
    bench.run_free(duration)
    return sim, bench


# ----------------------------------------------------------------------
# VCD writer / reader
# ----------------------------------------------------------------------
def test_vcd_round_trip(lib, counter_desync, tmp_path):
    result = counter_desync
    path = str(tmp_path / "counter.vcd")
    sim = Simulator(result.module, lib)
    writer = VcdWriter(path)
    selected = writer.attach(sim, include=["req_*", "ack_*", "gm_*", "dout*"])
    assert selected, "net selection matched nothing"
    bench = HandshakeTestbench(
        sim, result.network.env_ports, result.network.reset_net
    )
    bench.apply_reset(0)
    bench.run_free(100.0)
    writer.close()

    dump = read_vcd(path)
    assert dump["timescale_ns"] == pytest.approx(1e-3)
    assert sorted(dump["names"]) == sorted(selected)
    # the change stream is time ordered and lands on the final state
    times = [t for t, _, _ in dump["changes"]]
    assert times == sorted(times)
    for net in selected:
        assert dump["values"][net] == sim.net_values.get(net), net
    assert dump["end_time_ns"] <= sim.now + 1e-9


def test_vcd_selective_filters(lib, counter_desync, tmp_path):
    result = counter_desync
    sim = Simulator(result.module, lib)
    path = str(tmp_path / "filtered.vcd")
    writer = VcdWriter(path)
    selected = writer.attach(sim, include=["req_*"], exclude=["req_src*"])
    writer.close()
    assert selected
    assert all(net.startswith("req_") for net in selected)
    # constant tie nets never make it into a default selection
    sim2 = Simulator(result.module, lib)
    writer2 = VcdWriter(str(tmp_path / "all.vcd"))
    all_nets = writer2.attach(sim2)
    writer2.close()
    assert not [n for n in all_nets if n.startswith("__const")]


def test_vcd_identical_under_both_kernels(lib, counter_desync, tmp_path):
    """The waveform is a kernel-independent artifact."""
    result = counter_desync
    paths = {}
    for kernel in ("compiled", "reference"):
        path = str(tmp_path / f"{kernel}.vcd")
        sim = Simulator(result.module, lib, kernel=kernel)
        writer = VcdWriter(path)
        writer.attach(sim, include=["req_*", "ack_*", "gm_*", "gs_*"])
        bench = HandshakeTestbench(
            sim, result.network.env_ports, result.network.reset_net
        )
        bench.apply_reset(0)
        bench.run_free(80.0)
        writer.close()
        paths[kernel] = path
    with open(paths["compiled"]) as a, open(paths["reference"]) as b:
        assert a.read() == b.read()


# ----------------------------------------------------------------------
# watcher parity (satellite)
# ----------------------------------------------------------------------
def test_watcher_and_capture_parity_on_dlx(lib, dlx_desync):
    """watch_nets / watch_captures fire identically under both kernels."""
    result = dlx_desync
    probe_nets = sorted(result.network.handshake_nets()["G1"].values())
    streams = {}
    for kernel in ("compiled", "reference"):
        sim = Simulator(result.module, lib, kernel=kernel)
        events = []
        selective = []
        captures = []
        sim.watch_nets(lambda t, n, v, out=events: out.append((t, n, v)))
        sim.watch_nets(
            lambda t, n, v, out=selective: out.append((t, n, v)),
            nets=probe_nets,
        )
        sim.watch_captures(
            lambda e, out=captures: out.append((e.time, e.instance, e.value))
        )
        bench = HandshakeTestbench(
            sim, result.network.env_ports, result.network.reset_net
        )
        bench.apply_reset(0)
        bench.run_items(3, first_item=1)
        streams[kernel] = (events, selective, captures)
    compiled, reference = streams["compiled"], streams["reference"]
    assert compiled[0] == reference[0], "global watcher streams diverge"
    assert compiled[1] == reference[1], "selective watcher streams diverge"
    assert compiled[2] == reference[2], "capture streams diverge"
    assert compiled[0] and compiled[1] and compiled[2]
    # the selective stream is exactly the global stream filtered
    wanted = set(probe_nets)
    assert compiled[1] == [e for e in compiled[0] if e[1] in wanted]


# ----------------------------------------------------------------------
# handshake probe
# ----------------------------------------------------------------------
def test_probe_tokens_match_capture_sequences(pipeline_run):
    """Token counts equal the master latches' captured sequences."""
    result, sim, probe = pipeline_run
    sequences = sim.capture_sequences()
    counts = probe.token_counts()
    checked = 0
    for region in probe.regions:
        masters = region_masters(result, region)
        assert masters, f"region {region} has no master latches"
        for master in masters:
            assert len(sequences[master]) == counts[region], master
            checked += 1
    assert checked >= 3


def test_probe_cycle_stats_match_measured_period(pipeline_run):
    result, sim, probe = pipeline_run
    for region in probe.regions:
        master = region_masters(result, region)[0]
        measured = measure_effective_period(sim, master)
        stats = probe.cycle_stats(region)
        assert measured is not None and stats is not None
        assert stats["mean"] == pytest.approx(measured, rel=1e-9)
        assert stats["min"] <= stats["mean"] <= stats["max"]


def test_stall_attribution_partitions_each_cycle(pipeline_run):
    """The four segments tile [capture, capture] exactly."""
    _, _, probe = pipeline_run
    total_cycles = 0
    for state in probe.regions.values():
        for cycle in state.cycles:
            span = cycle["end"] - cycle["start"]
            parts = cycle["segments"]
            assert set(parts) == {
                "blocked_on_predecessor",
                "waiting_on_delay",
                "blocked_on_successor_ack",
                "pulse",
            }
            assert all(v >= 0 for v in parts.values())
            assert sum(parts.values()) == pytest.approx(span, abs=1e-9)
            total_cycles += 1
    assert total_cycles >= 30


def test_probe_occupancy_and_histograms(pipeline_run):
    _, _, probe = pipeline_run
    probe.finalize()
    for region, state in probe.regions.items():
        occupancy = probe.occupancy(region)
        assert 0.0 < occupancy < 1.0
        snapshot = state.histogram.snapshot()
        assert snapshot["count"] == len(state.cycles)
        assert state.histogram.bounds == NS_BUCKETS


def test_handshake_report_structure(pipeline_run, lib):
    result, _, probe = pipeline_run
    report = handshake_report(probe, result=result, library=lib)
    assert set(report["regions"]) == set(probe.regions)
    info = report["regions"]["G1"]
    assert info["tokens"] > 0
    assert set(info["stall_fraction"]) == set(info["stall_ns"])
    assert report["effective_period_measured_ns"] > 0
    assert report["critical_region_measured"] in report["regions"]
    assert report["model"]["effective_period_ns"] > 0
    assert "measured_over_model" in report["agreement"]
    json.dumps(report)  # must be serialisable as-is


# ----------------------------------------------------------------------
# DLX cross-validation (acceptance criterion)
# ----------------------------------------------------------------------
def test_dlx_report_agrees_with_measured_period(lib, dlx_desync, tmp_path):
    result = dlx_desync
    vcd_path = str(tmp_path / "dlx.vcd")
    observation = observe_handshake(result, lib, items=8, vcd_path=vcd_path)
    report = observation.report
    assert report.get("error") is None
    assert report["watchdog"]["deadlock"] is None
    checked = 0
    for region, info in report["regions"].items():
        stats = info["cycle_ns"]
        if stats is None:
            continue
        master = region_masters(result, region)[0]
        measured = measure_effective_period(observation.simulator, master)
        assert measured is not None
        assert abs(stats["mean"] - measured) / measured <= 0.05, region
        checked += 1
    assert checked >= 4

    # the --vcd artifact is spec-valid: it round-trips through the parser
    dump = read_vcd(vcd_path)
    assert sorted(dump["names"]) == observation.vcd_nets
    assert dump["changes"]
    for net in observation.vcd_nets:
        assert dump["values"][net] == observation.simulator.net_values.get(net)


# ----------------------------------------------------------------------
# deadlock watchdog (satellite)
# ----------------------------------------------------------------------
def test_watchdog_fires_on_forced_stall(lib, counter_desync):
    result = counter_desync
    sim = Simulator(result.module, lib)
    probe = HandshakeProbe(sim, result)
    watchdog = DeadlockWatchdog(probe, window_ns=50.0)
    bench = HandshakeTestbench(
        sim, result.network.env_ports, result.network.reset_net
    )
    bench.apply_reset(0)
    bench.run_free(60.0)
    assert not watchdog.poll(), "healthy run must not trip the watchdog"
    tokens_before = probe.token_counts()
    assert all(count > 0 for count in tokens_before.values())

    region = next(iter(probe.nets))
    sim.force_net(probe.nets[region]["ack"], 1)
    bench.run_free(200.0)

    assert watchdog.poll()
    deadlock = watchdog.deadlock
    assert deadlock is not None
    assert deadlock["gap_ns"] >= 50.0
    assert region in deadlock["blocked_regions"]
    assert region in deadlock["blocked_cycle"]
    # progress stopped: at most the in-flight token landed after the force
    after = probe.token_counts()
    assert after[region] <= tokens_before[region] + 1

    report = handshake_report(probe, watchdog=watchdog)
    assert report["watchdog"]["deadlock"]["blocked_cycle"]


def test_watchdog_records_stall_windows(lib, counter_desync):
    """Gaps between handshake events are flagged retroactively."""
    result = counter_desync
    sim = Simulator(result.module, lib)
    probe = HandshakeProbe(sim, result)
    watchdog = DeadlockWatchdog(probe, window_ns=30.0)
    bench = HandshakeTestbench(
        sim, result.network.env_ports, result.network.reset_net
    )
    bench.apply_reset(0)
    bench.run_free(40.0)
    region = next(iter(probe.nets))
    ack = probe.nets[region]["ack"]
    tokens_stalled = probe.token_counts()[region]
    sim.force_net(ack, 1)
    bench.run_free(80.0)
    # un-stall: drive the acknowledge low (re-evaluating its fanout)
    # and hand the net back to its real driver -- the ring resumes
    sim.force_net(ack, 0)
    sim.release_net(ack)
    bench.run_free(40.0)
    assert probe.token_counts()[region] > tokens_stalled, "ring must resume"
    assert watchdog.stalls, "the forced pause must be recorded"
    assert watchdog.stalls[0]["gap_ns"] > 30.0


# ----------------------------------------------------------------------
# exporter
# ----------------------------------------------------------------------
def test_handshake_trace_export(pipeline_run, tmp_path):
    _, _, probe = pipeline_run
    events = handshake_trace_events(probe)
    names = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert "handshake" in names
    assert any(name.startswith("region ") for name in names)
    tokens = [e for e in events if e["name"] == "token"]
    stalls = [e for e in events if e.get("cat") == "handshake.stall"]
    assert tokens and stalls
    # stall slices nest inside their token slice on the same track
    by_tid = {}
    for token in tokens:
        by_tid.setdefault(token["tid"], []).append(token)
    for stall in stalls:
        enclosing = [
            t
            for t in by_tid[stall["tid"]]
            if t["ts"] - 1e-6 <= stall["ts"]
            and stall["ts"] + stall["dur"] <= t["ts"] + t["dur"] + 1e-6
        ]
        assert enclosing, "stall slice escapes its token slice"
    path = str(tmp_path / "handshake_trace.json")
    document = write_handshake_trace(path, probe)
    with open(path) as handle:
        assert json.load(handle) == document


# ----------------------------------------------------------------------
# windowed activity / VCD -> power (satellite)
# ----------------------------------------------------------------------
def test_windowed_activity_matches_simulation(lib, counter_desync):
    result = counter_desync
    sim = Simulator(result.module, lib)
    recorder = WindowedActivityRecorder(sim)
    bench = HandshakeTestbench(
        sim, result.network.env_ports, result.network.reset_net
    )
    bench.apply_reset(0)
    bench.run_free(100.0)
    whole = activity_from_simulation(sim)
    windowed = activity_from_window(recorder)
    assert windowed.toggles == {
        net: count for net, count in whole.toggles.items() if count
    }
    assert windowed.instance_toggles == whole.instance_toggles
    # a strict sub-window drops the excluded toggles
    half = activity_from_window(recorder, start_ns=50.0)
    assert half.duration_ns == pytest.approx(sim.now - 50.0)
    assert sum(half.toggles.values()) < sum(windowed.toggles.values())
    power_whole = estimate_power(result.module, lib, windowed)
    power_half = estimate_power(result.module, lib, half)
    assert power_whole.total_mw > 0 and power_half.total_mw > 0


def test_activity_from_vcd_matches_toggle_counts(
    lib, counter_desync, tmp_path
):
    """The VCD -> SAIF path reproduces the simulator's own counts."""
    result = counter_desync
    path = str(tmp_path / "activity.vcd")
    sim = Simulator(result.module, lib)
    writer = VcdWriter(path)
    selected = writer.attach(sim)
    bench = HandshakeTestbench(
        sim, result.network.env_ports, result.network.reset_net
    )
    bench.apply_reset(0)
    bench.run_free(100.0)
    writer.close()

    profile = activity_from_vcd(path, result.module, lib)
    expected = {
        net: count
        for net, count in sim.toggle_counts.items()
        if net in set(selected) and count
    }
    assert profile.toggles == expected
    assert profile.duration_ns == pytest.approx(sim.now, rel=1e-6)
    report = estimate_power(result.module, lib, profile)
    baseline = estimate_power(
        result.module, lib, activity_from_simulation(sim)
    )
    assert report.switching_mw == pytest.approx(
        baseline.switching_mw, rel=1e-6
    )


# ----------------------------------------------------------------------
# metrics preset
# ----------------------------------------------------------------------
def test_ns_bucket_preset():
    assert list(NS_BUCKETS) == sorted(NS_BUCKETS)
    assert NS_BUCKETS[0] < 1  # sub-ns resolution at the bottom
    assert NS_BUCKETS[-1] >= 1000  # microsecond-scale stalls at the top
    histogram = Histogram("cycle", NS_BUCKETS)
    histogram.observe(0.3)
    histogram.observe(7.85)
    snapshot = histogram.snapshot()
    assert snapshot["buckets"]["<=0.5"] == 1
    assert snapshot["buckets"]["<=10"] == 1


# ----------------------------------------------------------------------
# network metadata + CLI
# ----------------------------------------------------------------------
def test_handshake_nets_metadata(counter_desync):
    result = counter_desync
    nets = result.network.handshake_nets()
    assert nets
    for region, keyed in nets.items():
        for key in ("req", "req_src", "xm", "ym", "gm", "xs", "ys", "gs",
                    "ack", "xma"):
            assert key in keyed, (region, key)
            assert keyed[key] in result.module.nets, keyed[key]


def test_cli_vcd_and_handshake_report(lib, tmp_path):
    netlist = Netlist()
    netlist.add_module(pipeline3(lib))
    design = str(tmp_path / "design.v")
    save_verilog(netlist, design)
    vcd_path = str(tmp_path / "waves.vcd")
    report_path = str(tmp_path / "handshake_report.json")
    code = main(
        [
            design,
            "-o", str(tmp_path / "out.v"),
            "--no-cache",
            "--quiet",
            "--vcd", vcd_path,
            "--handshake-report", report_path,
            "--observe-items", "6",
        ]
    )
    assert code == EXIT_OK
    dump = read_vcd(vcd_path)
    assert dump["changes"]
    with open(report_path) as handle:
        report = json.load(handle)
    assert report["regions"]
    assert report["effective_period_measured_ns"] > 0
    assert report["watchdog"]["deadlock"] is None
