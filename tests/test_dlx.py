"""DLX processor tests: assembler, execution, desynchronization, FE."""

import pytest

from repro.desync import Drdesync
from repro.designs import (
    DlxMemories,
    assemble,
    demo_program,
    dlx_core,
)
from repro.designs.dlx import OP_RTYPE, F_MUL
from repro.designs.dlx_env import dlx_respond, dlx_sync_stimulus
from repro.liberty import core9_hs
from repro.sim import Simulator, SyncTestbench, initialize_registers
from repro.sim.flowequiv import check_flow_equivalence_reactive
from repro.sta import min_clock_period

N = ("nop",)


@pytest.fixture(scope="module")
def lib():
    return core9_hs()


@pytest.fixture(scope="module")
def small_dlx(lib):
    return dlx_core(lib, registers=8, multiplier=False, width=16)


def run_program(lib, module, program, cycles, width=16):
    sim = Simulator(module, lib)
    memories = DlxMemories(program)
    stim = dlx_sync_stimulus(sim, memories, width=width)
    initialize_registers(sim, 0)
    bench = SyncTestbench(
        sim, period=min_clock_period(module, lib) * 1.5 + 0.5
    )
    bench.run_cycles(cycles, stim)
    return sim, memories


def reg_value(sim, n, width=16):
    return sim.bus_value([f"rf{n}[{i}]" for i in range(width)])


def test_assembler_encodings():
    words = assemble([
        ("add", 3, 1, 2),
        ("addi", 1, 0, 5),
        ("beq", 7, 0, 4),
        ("j", 2),
        ("nop",),
    ])
    assert words[0] >> 26 == OP_RTYPE
    assert (words[0] >> 11) & 0x1F == 3
    assert words[1] & 0xFFFF == 5
    assert words[3] & 0x3FFFFFF == 2
    assert words[4] == 0


def test_assembler_rejects_unknown():
    with pytest.raises(ValueError):
        assemble([("frobnicate", 1, 2, 3)])


def test_arithmetic_program(lib, small_dlx):
    program = assemble([
        ("addi", 1, 0, 5), ("addi", 2, 0, 7), N, N,
        ("add", 3, 1, 2), ("sub", 4, 2, 1), N, N,
        ("xor", 5, 3, 4), ("slt", 7, 4, 3), N, N, N, N,
    ])
    sim, _ = run_program(lib, small_dlx, program, 18)
    assert reg_value(sim, 1) == 5
    assert reg_value(sim, 2) == 7
    assert reg_value(sim, 3) == 12
    assert reg_value(sim, 4) == 2
    assert reg_value(sim, 5) == 14
    assert reg_value(sim, 7) == 1  # 2 < 12


def test_memory_program(lib, small_dlx):
    program = assemble([
        ("addi", 1, 0, 37), N, N, N,
        ("sw", 1, 0, 4), N, N, N,
        ("lw", 2, 0, 4), N, N, N, N, N, N, N,
    ])
    sim, memories = run_program(lib, small_dlx, program, 16)
    assert memories.data.get(4) == 37
    assert reg_value(sim, 2) == 37


def test_shift_and_logic(lib, small_dlx):
    program = assemble([
        ("addi", 1, 0, 3), ("addi", 2, 0, 2), N, N,
        ("sll", 3, 1, 2), ("srl", 4, 1, 2), N, N,
        ("and", 5, 1, 2), ("or", 6, 1, 2), N, N, N, N,
    ])
    sim, _ = run_program(lib, small_dlx, program, 18)
    assert reg_value(sim, 3) == 3 << 2
    assert reg_value(sim, 4) == 3 >> 2
    assert reg_value(sim, 5) == 3 & 2
    assert reg_value(sim, 6) == 3 | 2


def test_branch_taken_redirects_pc(lib, small_dlx):
    # beq r0, r0 always taken; the two delay-slot instructions execute
    program = assemble([
        ("beq", 0, 0, 5), N, N, N,
        ("addi", 1, 0, 1),  # skipped by the branch
        N, N, N,
        ("addi", 2, 0, 9), N, N, N, N, N, N, N,
    ])
    sim, _ = run_program(lib, small_dlx, program, 16)
    assert reg_value(sim, 1) == 0  # skipped
    assert reg_value(sim, 2) == 9  # branch target path executed


def test_multiplier_variant(lib):
    mod = dlx_core(lib, registers=8, multiplier=True, width=16)
    program = assemble([
        ("addi", 1, 0, 6), ("addi", 2, 0, 7), N, N,
        ("mul", 3, 1, 2), N, N, N, N, N, N, N,
    ])
    sim, _ = run_program(lib, mod, program, 16)
    assert reg_value(sim, 3) == 42


def test_r0_is_hardwired_zero(lib, small_dlx):
    program = assemble([
        ("addi", 0, 0, 99), N, N, N,
        ("add", 1, 0, 0), N, N, N, N, N, N, N,
    ])
    sim, _ = run_program(lib, small_dlx, program, 14)
    assert reg_value(sim, 1) == 0


def test_full_size_parameters(lib):
    mod = dlx_core(lib)
    assert len(mod.instances) > 5000
    assert "instr" in mod.ports and mod.ports["instr"].width == 32
    assert mod.check() == []


def test_dlx_autogrouping_finds_pipeline_regions(lib, small_dlx):
    mod = small_dlx.clone()
    tool = Drdesync(lib)
    result = tool.run(mod)
    active = [
        name
        for name, region in result.region_map.regions.items()
        if region.sequential_instances(mod, result.gatefile)
    ]
    # the paper's DLX decomposed into its 4 pipeline stages; our finer
    # netlist yields at least that many independent regions
    assert len(active) >= 4
    # the PC loop is a dependency cycle in the DDG
    import networkx as nx

    core = result.ddg.subgraph(n for n in result.ddg if n != "ENV")
    assert any(True for _ in nx.simple_cycles(core))


def test_dlx_flow_equivalence_reactive(lib, small_dlx):
    mod = small_dlx.clone()
    golden = mod.clone()
    program = assemble([
        ("addi", 1, 0, 5), ("addi", 2, 0, 7), N, N,
        ("add", 3, 1, 2), ("sub", 4, 2, 1), N, N,
        ("sw", 3, 0, 0), ("xor", 5, 3, 4), N, N,
        ("lw", 6, 0, 0), ("slt", 7, 4, 3), N, N,
    ])
    tool = Drdesync(lib)
    result = tool.run(mod)

    def respond_factory(simulator):
        return dlx_respond(DlxMemories(program), width=16)

    report = check_flow_equivalence_reactive(
        golden, result, lib, cycles=14, respond_factory=respond_factory
    )
    assert report.compared > 100
    assert report.equivalent, report.mismatches[:5]


def test_fast_adder_correctness(lib):
    """Carry-select adder matches integer addition on random vectors."""
    from repro.designs import Builder
    from repro.netlist import Module, PortDirection
    from repro.sim import Simulator

    mod = Module("fa")
    b = Builder(mod, lib)
    a_bits = b.input_port("a", 12)
    b_bits = b.input_port("b", 12)
    out = b.output_port("s", 12)
    sums, carry = b.fast_adder(a_bits, b_bits, name="t")
    b.connect_output(sums, out)
    sim = Simulator(mod, lib)
    import random

    rng = random.Random(5)
    for _ in range(20):
        x, y = rng.randrange(1 << 12), rng.randrange(1 << 12)
        for i in range(12):
            sim.set_input(f"a[{i}]", (x >> i) & 1)
            sim.set_input(f"b[{i}]", (y >> i) & 1)
        sim.settle(max_time=200)
        got = sim.bus_value([f"s[{i}]" for i in range(12)])
        assert got == (x + y) % (1 << 12), (x, y, got)


def test_csa_multiplier_correctness(lib):
    mod = dlx_core(lib, registers=8, multiplier=True, width=16)
    program = assemble([
        ("addi", 1, 0, 123), ("addi", 2, 0, 45), N, N,
        ("mul", 3, 1, 2), N, N, N, N, N, N, N,
    ])
    sim, _ = run_program(lib, mod, program, 16)
    assert reg_value(sim, 3) == (123 * 45) % (1 << 16)
