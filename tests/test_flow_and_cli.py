"""Implementation-flow and CLI tests."""

import pytest

from repro.cli import main as cli_main
from repro.designs import arm9_core, figure22_circuit, pipeline3
from repro.flow import (
    compare_implementations,
    implement_desynchronized,
    implement_synchronous,
)
from repro.liberty import core9_hs, core9_ll
from repro.netlist import save_verilog, parse_verilog, Netlist


@pytest.fixture(scope="module")
def lib():
    return core9_hs()


def test_sync_flow_produces_reports(lib):
    mod = figure22_circuit(lib)
    result = implement_synchronous(mod, lib)
    assert result.post_synthesis.cells > 0
    assert result.post_layout is not None
    assert result.post_layout.cells >= result.post_synthesis.cells
    assert result.min_period > 0


def test_desync_flow_produces_reports(lib):
    mod = figure22_circuit(lib)
    result = implement_desynchronized(mod, lib)
    assert result.desync is not None
    assert result.post_layout.core_size > 0


def test_comparison_table_shape(lib):
    sync_mod = pipeline3(lib)
    desync_mod = sync_mod.clone()
    sync = implement_synchronous(sync_mod, lib, target_utilization=0.95)
    desync = implement_desynchronized(
        desync_mod, lib, target_utilization=0.91
    )
    table = compare_implementations("pipeline3", sync, desync)
    assert set(table.phases) == {"Post Synthesis", "Post Layout"}
    layout = table.phases["Post Layout"]
    assert layout["# cells"]["overhead_pct"] > 0
    assert layout["sequential logic (um2)"]["overhead_pct"] > 5
    text = table.to_text()
    assert "synchronous vs desynchronized" in text
    assert "core size" in text


def test_table_5_2_shape_small_arm(lib):
    """ARM-style: scan design, single region, sequential-heavy overhead."""
    library = core9_ll()
    sync_mod = arm9_core(library, target_cells=1500)
    desync_mod = sync_mod.clone()
    from repro.desync import DesyncOptions

    sync = implement_synchronous(sync_mod, library, target_utilization=0.80)
    desync = implement_desynchronized(
        desync_mod,
        library,
        options=DesyncOptions(grouping="single"),
        target_utilization=0.88,
    )
    table = compare_implementations("ARM", sync, desync)
    synth = table.phases["Post Synthesis"]
    # scan substitution drives the sequential overhead well above the
    # plain-FF case (paper: 40.7% vs 17.7%)
    assert synth["sequential logic (um2)"]["overhead_pct"] > 20


def test_cli_end_to_end(lib, tmp_path):
    mod = figure22_circuit(lib)
    netlist = Netlist()
    netlist.add_module(mod)
    src = tmp_path / "design.v"
    save_verilog(netlist, str(src))
    out_v = tmp_path / "out.v"
    out_sdc = tmp_path / "out.sdc"
    out_blif = tmp_path / "out.blif"
    out_gf = tmp_path / "out.gatefile"
    code = cli_main([
        str(src),
        "-o", str(out_v),
        "--sdc", str(out_sdc),
        "--blif", str(out_blif),
        "--gatefile", str(out_gf),
        "--quiet",
    ])
    assert code == 0
    text = out_v.read_text()
    assert "module" in text and "CBRX1" in text
    again = parse_verilog(text)
    assert len(again.top.instances) > len(mod.ports)
    assert "create_clock" in out_sdc.read_text()
    assert ".model" in out_blif.read_text()
    assert "cell DFFX1" in out_gf.read_text()


def test_cli_single_region_and_margin(lib, tmp_path):
    mod = pipeline3(lib)
    netlist = Netlist()
    netlist.add_module(mod)
    src = tmp_path / "p3.v"
    save_verilog(netlist, str(src))
    out_v = tmp_path / "out.v"
    code = cli_main([
        str(src), "-o", str(out_v), "--group", "single",
        "--margin", "0.3", "--quiet",
    ])
    assert code == 0
    assert out_v.exists()


def _write_design(lib, tmp_path, name="design.v"):
    mod = figure22_circuit(lib)
    netlist = Netlist()
    netlist.add_module(mod)
    src = tmp_path / name
    save_verilog(netlist, str(src))
    return src


def test_cli_version_exits_zero(capsys):
    assert cli_main(["--version"]) == 0
    from repro import __version__

    assert __version__ in capsys.readouterr().out


def test_cli_usage_errors_exit_one(tmp_path, capsys):
    # no positional input
    assert cli_main([]) == 1
    # bad choice for --group
    assert cli_main(["x.v", "--group", "bogus"]) == 1
    err = capsys.readouterr().err
    assert "usage:" in err


def test_cli_flow_error_exits_two(tmp_path, capsys):
    code = cli_main([str(tmp_path / "missing.v"), "--no-cache", "--quiet"])
    assert code == 2
    assert "flow error" in capsys.readouterr().err


def test_cli_cache_journal_jobs_round_trip(lib, tmp_path):
    from repro.engine import read_journal

    src = _write_design(lib, tmp_path)
    cache_dir = tmp_path / "cache"
    journal = tmp_path / "run.jsonl"
    argv = [
        str(src),
        "-o", str(tmp_path / "out.v"),
        "--cache-dir", str(cache_dir),
        "--journal", str(journal),
        "--jobs", "2",
        "--quiet",
    ]
    assert cli_main(argv) == 0
    cold = read_journal(str(journal))
    assert {e["event"] for e in cold} >= {"run_start", "stage_end", "run_end"}
    assert all(
        e["cache"] == "miss"
        for e in cold
        if e["event"] == "stage_end"
    )

    # warm re-run against the same cache: every stage is a hit
    assert cli_main(argv) == 0
    warm = read_journal(str(journal))
    hits = [e for e in warm if e.get("cache") == "hit"]
    assert {e["stage"] for e in hits} == {
        "import", "group", "ffsub", "ddg", "delays", "network", "constraints"
    }
