"""Tests for the library model, writer/parser round trip and core9."""

import pytest

from repro.liberty import (
    CellKind,
    build_gatefile,
    core9_hs,
    core9_ll,
    is_scan_cell,
    parse_liberty,
    write_liberty,
)
from repro.netlist import PortDirection


@pytest.fixture(scope="module")
def hs_library():
    return core9_hs()


def test_core9_has_expected_cell_families(hs_library):
    for name in (
        "INVX1",
        "BUFX2",
        "NAND2X1",
        "MUX2X1",
        "MAJ3X1",
        "FAX1",
        "DFFX1",
        "SDFFX1",
        "DFFCX1",
        "LDHX1",
        "CKGATEX1",
    ):
        assert name in hs_library, name


def test_cell_kinds(hs_library):
    assert hs_library.cell("NAND2X1").kind == CellKind.COMBINATIONAL
    assert hs_library.cell("DFFX1").kind == CellKind.FLIP_FLOP
    assert hs_library.cell("LDHX1").kind == CellKind.LATCH


def test_scan_detection(hs_library):
    assert is_scan_cell(hs_library.cell("SDFFX1"))
    assert is_scan_cell(hs_library.cell("SDFFRX1"))
    assert not is_scan_cell(hs_library.cell("DFFX1"))
    assert not is_scan_cell(hs_library.cell("NAND2X1"))


def test_latch_pair_area_overhead_band(hs_library):
    """Latch-pair vs DFF area drives the paper's ~17.7% sequential overhead."""
    dff = hs_library.cell("DFFX1").area
    latch = hs_library.cell("LDHX1").area
    overhead = (2 * latch - dff) / dff
    assert 0.10 < overhead < 0.30


def test_drive_strengths_scale_resistance(hs_library):
    x1 = hs_library.cell("INVX1").delay_arcs()[0]
    x4 = hs_library.cell("INVX4").delay_arcs()[0]
    assert x4.rise_resistance < x1.rise_resistance / 2
    # and input capacitance grows
    assert (
        hs_library.cell("INVX4").pins["A"].capacitance
        > hs_library.cell("INVX1").pins["A"].capacitance
    )


def test_arc_delay_linear_model(hs_library):
    arc = hs_library.cell("NAND2X1").delay_arcs()[0]
    d_small = arc.delay(0.01)
    d_big = arc.delay(0.02)
    assert d_big > d_small
    assert abs((d_big - d_small) - arc.rise_resistance * 0.01) < 1e-12


def test_corners_best_faster_than_worst(hs_library):
    assert hs_library.corner("best").derate < 1.0 < hs_library.corner("worst").derate
    with pytest.raises(KeyError):
        hs_library.corner("typical")  # paper: no typical corner in the library


def test_ll_library_slower_and_lower_leakage():
    hs, ll = core9_hs(), core9_ll()
    hs_arc = hs.cell("NAND2X1").delay_arcs()[0]
    ll_arc = ll.cell("NAND2X1").delay_arcs()[0]
    assert ll_arc.intrinsic_rise > hs_arc.intrinsic_rise
    assert ll.cell("NAND2X1").leakage < hs.cell("NAND2X1").leakage / 5


def test_liberty_round_trip(hs_library):
    text = write_liberty(hs_library)
    again = parse_liberty(text)
    assert set(again.cells) == set(hs_library.cells)
    assert set(again.corners) == set(hs_library.corners)
    for name in ("DFFRX1", "LDHX1", "MUX2X1", "CKGATEX1"):
        orig, back = hs_library.cell(name), again.cell(name)
        assert set(orig.pins) == set(back.pins)
        assert abs(orig.area - back.area) < 1e-9
        assert len(orig.arcs) == len(back.arcs)
        if orig.sequential:
            assert back.sequential is not None
            assert back.sequential.kind == orig.sequential.kind
            assert back.sequential.next_state == orig.sequential.next_state
            assert back.sequential.clear == orig.sequential.clear


def test_round_trip_preserves_setup_hold(hs_library):
    again = parse_liberty(write_liberty(hs_library))
    dff = again.cell("DFFX1")
    types = {arc.timing_type for arc in dff.arcs}
    assert "setup_rising" in types and "hold_rising" in types
    latch = again.cell("LDHX1")
    types = {arc.timing_type for arc in latch.arcs}
    assert "setup_falling" in types


def test_gatefile_classification(hs_library):
    gatefile = build_gatefile(hs_library)
    assert gatefile.is_flip_flop("DFFX1")
    assert gatefile.is_latch("LDHX1")
    assert gatefile.is_combinational("NAND2X1")
    assert gatefile.info("BUFX1").is_buffer
    assert gatefile.info("INVX1").is_inverter
    assert not gatefile.info("NAND2X1").is_buffer
    assert gatefile.info("SDFFX1").is_scan
    assert gatefile.pin_direction("DFFX1", "Q") == PortDirection.OUTPUT
    assert gatefile.pin_direction("DFFX1", "D") == PortDirection.INPUT
    assert "CK" in gatefile.info("DFFX1").clock_pins


def test_gatefile_replacement_rules(hs_library):
    gatefile = build_gatefile(hs_library)
    plain = gatefile.rule_for("DFFX1")
    assert plain.latch_cell == "LDHX1"
    assert plain.front_logic == "D"
    scan = gatefile.rule_for("SDFFX1")
    assert "SE" in scan.front_logic and "SI" in scan.front_logic
    clear = gatefile.rule_for("DFFCX1")
    assert clear.async_clear == "!CDN"
    assert gatefile.missing_latches() == set()


def test_gatefile_reports_missing_latches(hs_library):
    import copy

    stripped = copy.deepcopy(hs_library)
    for name in list(stripped.cells):
        cell = stripped.cells[name]
        if cell.kind == CellKind.LATCH and name != "CKGATEX1":
            del stripped.cells[name]
    gatefile = build_gatefile(stripped)
    assert gatefile.missing_latches() == {"GEN_LATCH"}
    assert gatefile.rule_for("DFFX1").latch_cell == "GEN_LATCH"


def test_gatefile_text_round_trip(hs_library):
    gatefile = build_gatefile(hs_library)
    text = gatefile.to_text()
    again = type(gatefile).from_text(text)
    assert set(again.cells) == set(gatefile.cells)
    assert set(again.rules) == set(gatefile.rules)
    for name, rule in gatefile.rules.items():
        back = again.rules[name]
        assert back.latch_cell == rule.latch_cell
        assert back.front_logic == rule.front_logic
        assert back.async_clear == rule.async_clear
    assert again.info("SDFFX1").is_scan
    assert again.pin_direction("NAND2X1", "Z") == PortDirection.OUTPUT
