"""Tests for netlist cleanup rewrites and the technology mapper."""

import pytest

from repro.liberty import (
    ExpressionMapper,
    GateChooser,
    TechmapError,
    build_gatefile,
    core9_hs,
)
from repro.liberty.functions import parse_function
from repro.netlist import (
    Module,
    PortDirection,
    clean_logic,
    parse_verilog,
    resolve_assigns,
    simplify_names,
)
from repro.sim import Simulator


@pytest.fixture(scope="module")
def lib():
    return core9_hs()


@pytest.fixture(scope="module")
def gatefile(lib):
    return build_gatefile(lib)


# ----------------------------------------------------------------------
# design import hygiene (section 3.2.1)
# ----------------------------------------------------------------------

def test_resolve_assigns_collapses_aliases():
    text = """
    module m (a, y);
      input a; output y;
      wire n1, n2;
      assign n1 = a;
      assign n2 = n1;
      INVX1 u (.A(n2), .Z(y));
    endmodule
    """
    mod = parse_verilog(text).top
    eliminated = resolve_assigns(mod)
    assert eliminated >= 2
    # the inverter now reads the port net directly
    assert mod.net_of("u", "A") == "a"
    assert mod.check() == []


def test_resolve_assigns_keeps_port_to_port_wires():
    text = """
    module m (a, y);
      input a; output y;
      assign y = a;
    endmodule
    """
    mod = parse_verilog(text).top
    resolve_assigns(mod)
    assert ("y", "a") in mod.assigns  # both are ports: the wire stays


def test_resolve_assigns_constant_groups():
    text = """
    module m (y);
      output y;
      wire n;
      assign n = 1'b1;
      BUFX1 u (.A(n), .Z(y));
    endmodule
    """
    mod = parse_verilog(text).top
    resolve_assigns(mod)
    assert mod.net_of("u", "A") == "__const1__"


def test_simplify_names_rewrites_escaped_identifiers():
    text = r"""
    module m (a, y);
      input a; output y;
      wire \data.bus<3> ;
      BUFX1 \u/buf1 (.A(a), .Z(\data.bus<3> ));
      INVX1 u2 (.A(\data.bus<3> ), .Z(y));
    endmodule
    """
    mod = parse_verilog(text).top
    renames = simplify_names(mod)
    assert renames == 2
    assert "data.bus<3>" not in mod.nets
    assert all("/" not in name for name in mod.instances)
    assert mod.check() == []


def test_simplify_names_never_touches_ports():
    mod = Module("m")
    mod.add_port("weird$port", PortDirection.INPUT)
    simplify_names(mod)
    assert "weird$port" in mod.ports


# ----------------------------------------------------------------------
# logic cleaning (section 3.2.2, Figure 3.5)
# ----------------------------------------------------------------------

def test_clean_logic_removes_buffers_and_inverter_pairs(lib, gatefile):
    text = """
    module m (a, clk, q);
      input a, clk; output q;
      wire n1, n2, n3, n4;
      BUFX2 b1 (.A(a), .Z(n1));
      INVX1 i1 (.A(n1), .Z(n2));
      INVX1 i2 (.A(n2), .Z(n3));
      AND2X1 g (.A(n3), .B(a), .Z(n4));
      DFFX1 r (.D(n4), .CK(clk), .Q(q));
    endmodule
    """
    mod = parse_verilog(text).top
    removed = clean_logic(mod, gatefile)
    assert removed["buffers"] == 1
    assert removed["inverter_pairs"] == 2
    assert "b1" not in mod.instances
    assert mod.net_of("g", "A") == "a"
    assert mod.check() == []


def test_clean_logic_keeps_buffers_driving_ports(lib, gatefile):
    text = """
    module m (a, y);
      input a; output y;
      BUFX1 b (.A(a), .Z(y));
    endmodule
    """
    mod = parse_verilog(text).top
    removed = clean_logic(mod, gatefile)
    assert removed["buffers"] == 0
    assert "b" in mod.instances


def test_clean_logic_keeps_single_inverters(lib, gatefile):
    text = """
    module m (a, y);
      input a; output y;
      wire n;
      INVX1 i (.A(a), .Z(n));
      BUFX1 b (.A(n), .Z(y));
    endmodule
    """
    mod = parse_verilog(text).top
    clean_logic(mod, gatefile)
    assert "i" in mod.instances  # a lone inverter is real logic


def test_clean_logic_respects_protected_nets(lib, gatefile):
    text = """
    module m (a, y);
      input a; output y;
      wire n;
      BUFX1 b (.A(a), .Z(n));
      INVX1 i (.A(n), .Z(y));
    endmodule
    """
    mod = parse_verilog(text).top
    removed = clean_logic(mod, gatefile, protected_nets={"n"})
    assert removed["buffers"] == 0


# ----------------------------------------------------------------------
# the technology mapper
# ----------------------------------------------------------------------

def _map_and_simulate(lib, text, inputs):
    mod = Module("m")
    nets = {}
    for name in sorted({v for v in inputs[0]}):
        mod.add_port(name, PortDirection.INPUT)
        nets[name] = name
    mapper = ExpressionMapper(mod, GateChooser(lib))
    out = mapper.map_text(text, nets)
    sim = Simulator(mod, lib)
    results = []
    for vector in inputs:
        for name, value in vector.items():
            sim.set_input(name, value)
        sim.settle(max_time=100)
        results.append(sim.value(out))
    return results, mod


def test_techmap_simple_expressions(lib):
    from repro.liberty.functions import evaluate

    cases = ["D", "!D", "D * RN", "D + !SN", "(D * !SE) + (SI * SE)"]
    for text in cases:
        expr = parse_function(text)
        names = sorted(
            {v for v in ("D", "RN", "SN", "SE", "SI")}
        )
        import itertools

        vectors = [
            dict(zip(names, bits))
            for bits in itertools.product((0, 1), repeat=len(names))
        ]
        results, _ = _map_and_simulate(lib, text, vectors)
        for vector, got in zip(vectors, results):
            assert got == evaluate(expr, vector), (text, vector)


def test_techmap_detects_mux_pattern(lib):
    mod = Module("m")
    for name in ("A", "B", "S"):
        mod.add_port(name, PortDirection.INPUT)
    mapper = ExpressionMapper(mod, GateChooser(lib))
    mapper.map_text("(A * !S) + (B * S)", {"A": "A", "B": "B", "S": "S"})
    assert any(
        mod.instances[name].cell.startswith("MUX2") for name in mapper.added
    )


def test_techmap_unbound_input_raises(lib):
    mod = Module("m")
    mapper = ExpressionMapper(mod, GateChooser(lib))
    with pytest.raises(TechmapError):
        mapper.map_text("A * B", {"A": "a"})


def test_chooser_missing_cell_raises(lib):
    import copy

    stripped = copy.deepcopy(lib)
    for name in list(stripped.cells):
        if name.startswith("MAJ3"):
            del stripped.cells[name]
    chooser = GateChooser(stripped)
    with pytest.raises(TechmapError):
        chooser.gate("maj3")
