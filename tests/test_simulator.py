"""Event-driven simulator tests: gates, sequential cells, timing."""

import pytest

from repro.liberty import core9_hs
from repro.netlist import Module, PortDirection
from repro.sim import SimulationError, Simulator, SyncTestbench, initialize_registers


@pytest.fixture(scope="module")
def lib():
    return core9_hs()


def test_combinational_evaluation(lib):
    mod = Module("m")
    for name in ("a", "b"):
        mod.add_port(name, PortDirection.INPUT)
    mod.add_port("y", PortDirection.OUTPUT)
    mod.add_instance("u1", "NAND2X1", {"A": "a", "B": "b", "Z": "n"})
    mod.add_instance("u2", "INVX1", {"A": "n", "Z": "y"})
    sim = Simulator(mod, lib)
    for a, b, expected in [(0, 0, 0), (1, 0, 0), (1, 1, 1), (0, 1, 0)]:
        sim.set_input("a", a)
        sim.set_input("b", b)
        sim.settle()
        assert sim.value("y") == expected


def test_unknowns_propagate_until_controlled(lib):
    mod = Module("m")
    for name in ("a", "b"):
        mod.add_port(name, PortDirection.INPUT)
    mod.add_port("y", PortDirection.OUTPUT)
    mod.add_instance("u", "AND2X1", {"A": "a", "B": "b", "Z": "y"})
    sim = Simulator(mod, lib)
    sim.set_input("a", 1)
    sim.settle()
    assert sim.value("y") is None  # b unknown, a=1 does not control AND
    sim.set_input("a", 0)
    sim.settle()
    assert sim.value("y") == 0  # controlled


def test_gate_delays_accumulate(lib):
    mod = Module("m")
    mod.add_port("a", PortDirection.INPUT)
    mod.add_port("y", PortDirection.OUTPUT)
    prev = "a"
    for i in range(6):
        out = "y" if i == 5 else f"n{i}"
        mod.add_instance(f"u{i}", "BUFX1", {"A": prev, "Z": out})
        prev = out
    sim = Simulator(mod, lib)
    events = []
    sim.watch_nets(lambda t, n, v: events.append((t, n)) if n == "y" else None)
    sim.set_input("a", 1)
    sim.settle()
    assert events and events[0][0] > 0.3  # six buffered stages


def test_corner_changes_simulation_speed(lib):
    def chain_delay(corner):
        mod = Module("m")
        mod.add_port("a", PortDirection.INPUT)
        mod.add_port("y", PortDirection.OUTPUT)
        mod.add_instance("u", "INVX1", {"A": "a", "Z": "y"})
        sim = Simulator(mod, lib, corner=corner)
        events = []
        sim.watch_nets(lambda t, n, v: events.append(t) if n == "y" else None)
        sim.set_input("a", 0)
        sim.settle()
        events.clear()
        sim.set_input("a", 1)
        sim.settle()
        return events[0]

    assert chain_delay("worst") > chain_delay("best")


def test_derate_map_slows_one_instance(lib):
    mod = Module("m")
    mod.add_port("a", PortDirection.INPUT)
    mod.add_port("y", PortDirection.OUTPUT)
    mod.add_instance("u", "INVX1", {"A": "a", "Z": "y"})

    def edge_time(derate_map):
        sim = Simulator(mod, lib, derate_map=derate_map)
        events = []
        sim.watch_nets(lambda t, n, v: events.append(t) if n == "y" else None)
        sim.set_input("a", 0)
        sim.settle()
        events.clear()
        start = sim.now
        sim.set_input("a", 1)
        sim.settle()
        return events[0] - start

    assert edge_time({"u": 2.0}) == pytest.approx(edge_time(None) * 2.0)


def test_flip_flop_captures_on_rising_edge(lib):
    mod = Module("m")
    for name in ("d", "ck"):
        mod.add_port(name, PortDirection.INPUT)
    mod.add_port("q", PortDirection.OUTPUT)
    mod.add_instance("r", "DFFX1", {"D": "d", "CK": "ck", "Q": "q"})
    sim = Simulator(mod, lib)
    sim.set_state("r", 0)
    sim.set_input("ck", 0)
    sim.set_input("d", 1)
    sim.settle()
    assert sim.value("q") == 0  # no edge yet
    sim.set_input("ck", 1)
    sim.settle()
    assert sim.value("q") == 1
    sim.set_input("d", 0)
    sim.settle()
    assert sim.value("q") == 1  # level change is ignored
    assert len(sim.captures) == 1


def test_ff_async_clear_dominates(lib):
    mod = Module("m")
    for name in ("d", "ck", "cdn"):
        mod.add_port(name, PortDirection.INPUT)
    mod.add_port("q", PortDirection.OUTPUT)
    mod.add_instance("r", "DFFCX1", {"D": "d", "CK": "ck", "CDN": "cdn", "Q": "q"})
    sim = Simulator(mod, lib)
    sim.set_state("r", 1)
    sim.set_input("cdn", 1)
    sim.set_input("d", 1)
    sim.set_input("ck", 0)
    sim.settle()
    sim.set_input("cdn", 0)  # assert async clear (active low)
    sim.settle()
    assert sim.value("q") == 0


def test_latch_transparency_and_capture(lib):
    mod = Module("m")
    for name in ("d", "g"):
        mod.add_port(name, PortDirection.INPUT)
    mod.add_port("q", PortDirection.OUTPUT)
    mod.add_instance("l", "LDHX1", {"D": "d", "G": "g", "Q": "q"})
    sim = Simulator(mod, lib)
    sim.set_state("l", 0)
    sim.set_input("g", 1)
    sim.set_input("d", 1)
    sim.settle()
    assert sim.value("q") == 1  # transparent
    sim.set_input("d", 0)
    sim.settle()
    assert sim.value("q") == 0  # still following
    sim.set_input("g", 0)  # close: capture
    sim.set_input("d", 1)
    sim.settle()
    assert sim.value("q") == 0  # held
    captures = [c for c in sim.captures if c.instance == "l"]
    assert len(captures) == 1 and captures[0].value == 0


def test_clock_gate_cell(lib):
    mod = Module("m")
    for name in ("en", "ck"):
        mod.add_port(name, PortDirection.INPUT)
    mod.add_port("gck", PortDirection.OUTPUT)
    mod.add_instance("g", "CKGATEX1", {"EN": "en", "CK": "ck", "GCK": "gck"})
    sim = Simulator(mod, lib)
    sim.set_state("g", 0)
    sim.set_input("en", 0)
    sim.set_input("ck", 0)
    sim.settle()
    sim.set_input("ck", 1)
    sim.settle()
    assert sim.value("gck") == 0  # gated off
    sim.set_input("ck", 0)
    sim.set_input("en", 1)
    sim.settle()
    sim.set_input("ck", 1)
    sim.settle()
    assert sim.value("gck") == 1  # enabled


def test_toggle_counting(lib):
    mod = Module("m")
    mod.add_port("a", PortDirection.INPUT)
    mod.add_port("y", PortDirection.OUTPUT)
    mod.add_instance("u", "INVX1", {"A": "a", "Z": "y"})
    sim = Simulator(mod, lib)
    for value in (0, 1, 0, 1):
        sim.set_input("a", value)
        sim.settle()
    assert sim.toggle_counts["y"] >= 3
    assert sim.total_toggles() >= 6


def test_two_inverter_loop_is_bistable(lib):
    mod = Module("m")
    mod.add_port("y", PortDirection.OUTPUT)
    mod.add_instance("u1", "INVX1", {"A": "y", "Z": "n"})
    mod.add_instance("u2", "INVX1", {"A": "n", "Z": "y"})
    sim = Simulator(mod, lib)
    sim._schedule(0.0, "y", 0)
    sim.run_until(100.0)
    assert sim.value("y") == 0 and sim.value("n") == 1


def test_event_limit_guards_oscillation(lib):
    # a three-inverter ring oscillates forever
    mod = Module("m")
    mod.add_port("y", PortDirection.OUTPUT)
    mod.add_instance("u1", "INVX1", {"A": "y", "Z": "n1"})
    mod.add_instance("u2", "INVX1", {"A": "n1", "Z": "n2"})
    mod.add_instance("u3", "INVX1", {"A": "n2", "Z": "y"})
    sim = Simulator(mod, lib)
    sim._schedule(0.0, "y", 0)
    with pytest.raises(SimulationError):
        sim.run_until(1e6, max_events=10000)


def test_sync_testbench_counts(lib):
    from repro.designs.simple import counter

    mod = counter(lib, width=6)
    sim = Simulator(mod, lib)
    initialize_registers(sim, 0)
    bench = SyncTestbench(sim, period=4.0)
    bench.run_cycles(10)
    assert sim.bus_value([f"count[{i}]" for i in range(6)]) == 10


def test_bus_value_with_unknown(lib):
    mod = Module("m")
    mod.add_port("a", PortDirection.INPUT, msb=1, lsb=0)
    sim = Simulator(mod, lib)
    assert sim.bus_value(["a[0]", "a[1]"]) is None
    sim.set_input("a[0]", 1)
    sim.set_input("a[1]", 0)
    sim.settle()
    assert sim.bus_value(["a[0]", "a[1]"]) == 1
