"""End-to-end incremental re-flow (``repro.flow.incremental``).

Every incremental path is held against the from-scratch pipeline as a
bit-identical parity oracle: ``session.apply`` (mode="incremental")
must produce exactly the Verilog, SDC, region membership, delay-element
lengths/taps and handshake topology that ``session.oracle``
(mode="full") derives by re-running the whole flow on the edited
input.  The hypothesis properties drive random single-cell swaps and
wire re-annotations through both modes on the pipeline and DLX
designs.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.desync import DesyncOptions, desynchronize
from repro.engine.cache import ArtifactCache
from repro.flow.incremental import (
    EditError,
    IncrementalSession,
    NetlistEdit,
    apply_edit,
    load_edits,
)
from repro.designs import dlx_core, pipeline3
from repro.liberty import core9_hs
from repro.liberty.gatefile import build_gatefile
from repro.netlist import Module, PortDirection
from repro.netlist.index import ConnectivityIndex
from repro.netlist.verilog import write_module

LIB = core9_hs()


def _fingerprint(result):
    """Everything the parity contract covers, as comparable values."""
    return {
        "verilog": write_module(result.module),
        "sdc": result.export_sdc(),
        "elements": {
            region: (element.length, tuple(element.taps))
            for region, element in sorted(
                result.network.delay_elements.items()
            )
        },
        "region_delays": {
            region: round(delay, 9)
            for region, delay in sorted(result.network.region_delays.items())
        },
        "membership": {
            name: result.region_map.region_of(name)
            for name in sorted(result.module.instances)
        },
        "handshake": result.network.handshake_nets(),
    }


def _assert_parity(session, outcome, edits_note=""):
    want = _fingerprint(session.oracle())
    got = _fingerprint(outcome.result)
    assert got == want, f"incremental != full {edits_note}"


# ----------------------------------------------------------------------
# dirty log (netlist.core) and selective index invalidation
# ----------------------------------------------------------------------


def _tiny_module():
    module = Module("tiny")
    module.add_port("a", PortDirection.INPUT)
    module.add_port("y", PortDirection.OUTPUT)
    module.ensure_net("a")
    module.ensure_net("n1")
    module.ensure_net("y")
    module.add_instance("u1", "BUFX1", {"A": "a", "Z": "n1"})
    module.add_instance("u2", "BUFX1", {"A": "n1", "Z": "y"})
    return module


def test_dirty_log_reports_exact_sets():
    module = _tiny_module()
    token = module.dirty_token
    module.note_cell_change("u1")
    module.note_wire_annotation(["n1"])
    dirty = module.dirty_since(token)
    assert dirty is not None
    assert dirty.cells == {"u1"}
    assert dirty.nets == {"a", "n1"}  # u1's pins
    assert dirty.wires == {"n1"}
    # a token at the current head sees an empty (falsy) delta
    fresh = module.dirty_since(module.dirty_token)
    assert fresh is not None and not fresh


def test_dirty_log_whole_module_events_answer_none():
    module = _tiny_module()
    token = module.dirty_token
    module.invalidate_indexes()
    assert module.dirty_since(token) is None


def test_dirty_log_overflow_degrades_to_none():
    module = _tiny_module()
    token = module.dirty_token
    for _ in range(5000):  # > _DIRTY_LOG_LIMIT events
        module.note_wire_annotation(["n1"])
    assert module.dirty_since(token) is None
    # recent tokens are still answerable
    recent = module.dirty_token
    module.note_wire_annotation(["y"])
    assert module.dirty_since(recent).wires == {"y"}


def test_connectivity_index_evicts_only_annotated_nets():
    module = _tiny_module()
    index = ConnectivityIndex(module, build_gatefile(LIB))
    for net in ("a", "n1", "y"):
        index.connections_of(net)
    misses = index.misses
    module.note_wire_annotation(["n1"])
    # the untouched nets stay cached; only n1 reclassifies
    index.connections_of("a")
    index.connections_of("y")
    assert index.misses == misses
    index.connections_of("n1")
    assert index.misses == misses + 1


# ----------------------------------------------------------------------
# edit vocabulary
# ----------------------------------------------------------------------


def test_edit_round_trips_through_dict():
    edit = NetlistEdit(
        "annotate_wires", wire_caps={"n2": 0.02, "n1": 0.01}
    )
    # dict-valued fields normalise to sorted tuples on construction
    assert edit.wire_caps == (("n1", 0.01), ("n2", 0.02))
    again = NetlistEdit.from_dict(edit.to_dict())
    assert again == edit
    swap = NetlistEdit.from_dict({"op": "swap_cell", "instance": "u1",
                                  "cell": "AND2X4"})
    assert swap.to_dict() == {"op": "swap_cell", "instance": "u1",
                              "cell": "AND2X4"}


def test_edit_rejects_unknown_kind():
    with pytest.raises(EditError):
        NetlistEdit("retime_everything")
    with pytest.raises(EditError):
        NetlistEdit.from_dict({"instance": "u1"})


def test_load_edits_accepts_list_wrapper_and_single(tmp_path):
    record = {"op": "swap_cell", "instance": "u1", "cell": "AND2X2"}
    for payload in ([record], {"edits": [record]}, record):
        path = tmp_path / "edits.json"
        path.write_text(json.dumps(payload))
        edits = load_edits(str(path))
        assert [e.to_dict() for e in edits] == [record]


def test_apply_edit_missing_instance_raises():
    module = _tiny_module()
    with pytest.raises(EditError):
        apply_edit(module, LIB, NetlistEdit("swap_cell", instance="nope",
                                            cell="BUFX2"))


def test_cache_patch_provenance_round_trip(tmp_path):
    cache = ArtifactCache(str(tmp_path / "cache"))
    assert cache.get_patch("child") is None
    cache.record_patch("child", {"parent": "root", "edits": 2})
    assert cache.get_patch("child") == {"parent": "root", "edits": 2}


# ----------------------------------------------------------------------
# session paths on the 3-stage pipeline design
# ----------------------------------------------------------------------


@pytest.fixture()
def pipe_session():
    session = IncrementalSession(LIB)
    session.start(pipeline3(LIB))
    return session


def _pick(session, cell):
    names = sorted(
        name
        for name, inst in session._snap_imported.instances.items()
        if inst.cell == cell and name in session.result.module.instances
    )
    assert names, f"no {cell} instance visible in all snapshots"
    return names[0]


def test_drive_swap_splices_and_matches_oracle(pipe_session):
    target = _pick(pipe_session, "XOR2X1")
    outcome = pipe_session.apply(
        NetlistEdit("swap_cell", instance=target, cell="XOR2X2")
    )
    assert outcome.mode == "incremental"
    assert outcome.path == "splice"
    assert outcome.reused["network"] and outcome.reused["ffsub"]
    assert not outcome.reused["constraints"]  # SDC always re-emitted
    assert set(outcome.region_status.values()) == {"reused"}
    _assert_parity(pipe_session, outcome, f"(swap {target})")


def test_wire_annotation_on_design_net_matches_oracle(pipe_session):
    # a post-import net that survives to the final module
    nets = sorted(
        net
        for net in pipe_session._snap_grouped.nets
        if net in pipe_session.result.module.nets
        and not pipe_session._snap_grouped.nets[net].is_constant
    )
    edit = NetlistEdit("annotate_wires", wire_caps={nets[0]: 0.004})
    outcome = pipe_session.apply(edit)
    assert outcome.path in ("splice", "network")
    _assert_parity(pipe_session, outcome, f"(annotate {nets[0]})")


def test_ffsub_created_net_annotation_falls_back_to_deep(pipe_session):
    # gm_*/gs_* enable nets are created by the FF substitution stage
    # and feed the ack-element sizing -- never spliceable
    enable = sorted(
        net for net in pipe_session.result.module.nets
        if net.startswith("gm_")
    )[0]
    outcome = pipe_session.apply(
        NetlistEdit("annotate_wires", wire_caps={enable: 0.05})
    )
    assert outcome.path == "deep"
    _assert_parity(pipe_session, outcome, f"(annotate {enable})")


def test_buffer_swap_under_clean_falls_back_to_deep(pipe_session):
    # the cleanup pass collapses buffers, so a buffer swap can change
    # region grouping -- the fast-path guard must refuse it
    target = _pick(pipe_session, "BUFX1")
    outcome = pipe_session.apply(
        NetlistEdit("swap_cell", instance=target, cell="BUFX2")
    )
    assert outcome.path == "deep"
    assert not outcome.reused["group"]
    _assert_parity(pipe_session, outcome, f"(buffer swap {target})")


def test_set_constant_falls_back_to_deep(pipe_session):
    net = sorted(
        net
        for net, obj in pipe_session._snap_imported.nets.items()
        if not obj.is_constant
        and net not in pipe_session._snap_imported.ports
    )[0]
    outcome = pipe_session.apply(
        NetlistEdit("set_constant", net=net, value=0)
    )
    assert outcome.path == "deep"
    _assert_parity(pipe_session, outcome, f"(const {net})")


def test_edits_chain_across_applies(pipe_session):
    first = _pick(pipe_session, "XOR2X1")
    pipe_session.apply(NetlistEdit("swap_cell", instance=first,
                                   cell="XOR2X2"))
    # swap back -- the oracle replays BOTH edits, so parity here proves
    # the session carries accumulated state correctly
    outcome = pipe_session.apply(
        NetlistEdit("swap_cell", instance=first, cell="XOR2X1")
    )
    _assert_parity(pipe_session, outcome, "(chained swaps)")


def test_scoped_verification_reports_affected_regions(pipe_session):
    target = _pick(pipe_session, "XOR2X1")
    outcome = pipe_session.apply(
        NetlistEdit("swap_cell", instance=target, cell="XOR2X2"),
        verify="affected",
    )
    assert outcome.report is not None
    assert outcome.report.get("error") is None
    assert outcome.report["regions_verified"] == outcome.verified_regions
    regions = set(outcome.result.network.handshake_nets())
    assert set(outcome.verified_regions) <= regions
    full = pipe_session.apply(
        NetlistEdit("swap_cell", instance=target, cell="XOR2X1"),
        verify="full",
    )
    assert full.report is not None and full.report.get("error") is None
    assert set(full.verified_regions) == set(
        full.result.network.handshake_nets()
    )


def test_session_records_patch_provenance(tmp_path):
    cache = ArtifactCache(str(tmp_path / "cache"))
    session = IncrementalSession(LIB, cache=cache)
    session.start(pipeline3(LIB), key="rootjob")
    target = _pick(session, "XOR2X1")
    session.apply(NetlistEdit("swap_cell", instance=target, cell="XOR2X2"))
    child = session.parent_key
    assert child != "rootjob"
    patch = cache.get_patch(child)
    assert patch is not None
    assert patch["parent"] == "rootjob"


# ----------------------------------------------------------------------
# hypothesis: random edit batches == from-scratch flow (satellite c)
# ----------------------------------------------------------------------

_PIPE_PROBE = pipeline3(LIB)
_PIPE_SWAPPABLE = sorted(
    name
    for name, inst in _PIPE_PROBE.instances.items()
    if inst.cell in ("XOR2X1", "XOR2X2")
)
_PIPE_NETS = sorted(
    net for net, obj in _PIPE_PROBE.nets.items() if not obj.is_constant
)

_pipe_edit = st.one_of(
    st.builds(
        lambda name, cell: NetlistEdit("swap_cell", instance=name,
                                       cell=cell),
        st.sampled_from(_PIPE_SWAPPABLE),
        st.sampled_from(["XOR2X1", "XOR2X2"]),
    ),
    st.builds(
        lambda net, cap: NetlistEdit("annotate_wires",
                                     wire_caps={net: cap}),
        st.sampled_from(_PIPE_NETS),
        st.floats(0.001, 0.05),
    ),
)


@given(st.lists(_pipe_edit, min_size=1, max_size=4))
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_edits_match_full_flow_on_pipeline(edits):
    session = IncrementalSession(LIB)
    session.start(pipeline3(LIB))
    outcome = session.apply(edits)
    assert outcome.mode == "incremental"
    _assert_parity(session, outcome, f"({[e.to_dict() for e in edits]})")


@pytest.fixture(scope="module")
def dlx_session():
    session = IncrementalSession(LIB)
    session.start(dlx_core(LIB))
    return session


@given(data=st.data())
@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)
def test_random_edits_match_full_flow_on_dlx(dlx_session, data):
    # one module-scoped session accumulates edits across examples; the
    # oracle replays the whole accumulated sequence each time, so every
    # example is a fresh end-to-end parity check
    session = dlx_session
    swappable = sorted(
        name
        for name, inst in session._snap_imported.instances.items()
        if inst.cell in ("AND2X1", "AND2X2", "AND2X4")
        and name in session.result.module.instances
    )
    nets = sorted(
        net
        for net in session._snap_grouped.nets
        if net in session.result.module.nets
        and not session._snap_grouped.nets[net].is_constant
    )
    if data.draw(st.booleans(), label="swap?"):
        edit = NetlistEdit(
            "swap_cell",
            instance=data.draw(st.sampled_from(swappable), label="inst"),
            cell=data.draw(
                st.sampled_from(["AND2X1", "AND2X2", "AND2X4"]),
                label="cell",
            ),
        )
    else:
        edit = NetlistEdit(
            "annotate_wires",
            wire_caps={
                data.draw(st.sampled_from(nets), label="net"): data.draw(
                    st.floats(0.001, 0.02), label="cap"
                )
            },
        )
    outcome = session.apply(edit)
    _assert_parity(session, outcome, f"({edit.to_dict()})")


# ----------------------------------------------------------------------
# service: eco job type referencing a parent job's artifacts
# ----------------------------------------------------------------------


def _swap_edit_for(module):
    name = sorted(
        n for n, inst in module.instances.items() if inst.cell == "XOR2X1"
    )[0]
    return {"op": "swap_cell", "instance": name, "cell": "XOR2X2"}


def test_service_eco_job_end_to_end(tmp_path):
    from repro.service import JobState, ServiceDaemon
    from repro.service.jobs import JobSpec

    edit = _swap_edit_for(pipeline3(LIB))
    with ServiceDaemon(run_dir=str(tmp_path / "svc"), workers=1) as svc:
        parent, _ = svc.submit(JobSpec(design="pipeline3"))
        svc.queue.wait(parent.id, timeout=120.0)
        assert parent.state is JobState.DONE

        eco, deduped = svc.submit(JobSpec(parent=parent.id, edits=[edit]))
        assert deduped is False
        svc.queue.wait(eco.id, timeout=120.0)
        assert eco.state is JobState.DONE
        payload = svc.job_result(eco.id, include_verilog=True)
        assert payload["mode"] == "incremental"
        assert payload["eco"]["parent"] == parent.id
        assert payload["eco"]["path"] == "splice"
        assert payload["eco"]["reused"]["network"] is True

        # eco-of-eco: the session chain replays the parent's edits
        second, _ = svc.submit(JobSpec(parent=eco.id, edits=[edit | {
            "cell": "XOR2X1"}]))
        svc.queue.wait(second.id, timeout=120.0)
        assert second.state is JobState.DONE
        chained = svc.job_result(second.id)
        assert chained["eco"]["parent"] == eco.id

        # parity oracle: the service's eco verilog equals a from-scratch
        # flow over the edited input
        module = pipeline3(LIB)
        apply_edit(module, LIB, NetlistEdit.from_dict(edit))
        full = desynchronize(module, LIB, DesyncOptions())
        assert payload["verilog"] == write_module(full.module)


def test_service_eco_validation(tmp_path):
    from repro.service import JobError, ServiceDaemon
    from repro.service.jobs import JobSpec

    with pytest.raises(JobError):
        JobSpec(design="pipeline3",
                edits=[{"op": "swap_cell"}]).validate()
    with pytest.raises(JobError):
        JobSpec(parent="j1").validate()  # eco without edits
    with pytest.raises(JobError):
        JobSpec(parent="j1", design="dlx",
                edits=[{"op": "swap_cell"}]).validate()
    with ServiceDaemon(run_dir=str(tmp_path / "svc"), workers=1) as svc:
        with pytest.raises(JobError):
            svc.submit(JobSpec(parent="no-such-job",
                               edits=[{"op": "swap_cell",
                                       "instance": "u1",
                                       "cell": "XOR2X2"}]))


def test_cli_eco_round_trip(tmp_path):
    from repro.cli import main as cli_main
    from repro.netlist.verilog import parse_verilog

    module = pipeline3(LIB)
    src = tmp_path / "pipe.v"
    src.write_text(write_module(module))
    edits = tmp_path / "edits.json"
    edits.write_text(json.dumps([_swap_edit_for(module)]))
    out_v = tmp_path / "out.v"
    out_sdc = tmp_path / "out.sdc"
    code = cli_main([
        str(src), "--eco", str(edits), "--eco-verify", "affected",
        "-o", str(out_v), "--sdc", str(out_sdc), "--quiet",
    ])
    assert code == 0
    # parity against the from-scratch flow over the same parsed input
    reparsed = parse_verilog(src.read_text()).top
    apply_edit(reparsed, LIB, load_edits(str(edits))[0])
    full = desynchronize(reparsed, LIB, DesyncOptions())
    assert out_v.read_text() == write_module(full.module)
    assert out_sdc.read_text() == full.export_sdc()
