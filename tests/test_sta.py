"""STA engine tests: graph construction, propagation, loop breaking, SDC."""

import pytest

from repro.liberty import core9_hs
from repro.netlist import Module, PortDirection, parse_verilog
from repro.sta import (
    SdcFile,
    analyze,
    build_timing_graph,
    compute_net_loads,
    min_clock_period,
    path_to_text,
    propagate,
    region_critical_path,
)
from repro.sta.sdc import CreateClock, PathDelay, SetDisableTiming, SetSizeOnly


@pytest.fixture(scope="module")
def lib():
    return core9_hs()


def chain_module(depth=4):
    """in -> DFF -> INV chain (depth) -> DFF."""
    mod = Module("chain")
    mod.add_port("din", PortDirection.INPUT)
    mod.add_port("clk", PortDirection.INPUT)
    mod.add_port("dout", PortDirection.OUTPUT)
    mod.add_instance("r_in", "DFFX1", {"D": "din", "CK": "clk", "Q": "q0"})
    prev = "q0"
    for i in range(depth):
        out = f"n{i}"
        mod.add_instance(f"inv{i}", "INVX1", {"A": prev, "Z": out})
        prev = out
    mod.add_instance("r_out", "DFFX1", {"D": prev, "CK": "clk", "Q": "dout"})
    return mod


def test_net_loads_sum_pin_caps(lib):
    mod = chain_module(1)
    loads = compute_net_loads(mod, lib)
    inv_cap = lib.cell("INVX1").pins["A"].capacitance
    assert loads["q0"] == pytest.approx(lib.default_wire_cap + inv_cap)


def test_launch_and_capture_nodes(lib):
    graph = build_timing_graph(chain_module(2), lib)
    assert ("r_in", "Q") in graph.launch_nodes
    assert ("r_out", "D") in graph.capture_nodes
    # clock pins never appear as sinks in combinational mode
    assert ("r_in", "CK") not in graph.reverse


def test_delay_grows_with_chain_depth(lib):
    d2 = analyze(chain_module(2), lib).critical_delay
    d8 = analyze(chain_module(8), lib).critical_delay
    assert d8 > d2
    # roughly linear: six more inverters
    per_inv = (d8 - d2) / 6
    assert 0.01 < per_inv < 0.2


def test_corner_derating(lib):
    mod = chain_module(4)
    worst = analyze(mod, lib, corner="worst").critical_delay
    best = analyze(mod, lib, corner="best").critical_delay
    ratio = worst / best
    expected = lib.corner("worst").derate / lib.corner("best").derate
    assert ratio == pytest.approx(expected, rel=1e-6)


def test_critical_path_backtrace(lib):
    report = analyze(chain_module(3), lib)
    names = [point.node[0] for point in report.path]
    assert names[0] == "r_in"
    assert names[-1] == "r_out"
    assert "inv1" in names
    text = path_to_text(report)
    assert "critical delay" in text


def test_slack_against_period(lib):
    mod = chain_module(4)
    need = min_clock_period(mod, lib)
    tight = analyze(mod, lib, clock_period=need * 0.5)
    loose = analyze(mod, lib, clock_period=need * 2.0)
    assert tight.wns < 0 < loose.wns


def test_loop_breaking_cuts_combinational_cycle(lib):
    mod = Module("loopy")
    mod.add_port("a", PortDirection.INPUT)
    mod.add_port("y", PortDirection.OUTPUT)
    # a NAND loop: u1 and u2 feed each other
    mod.add_instance("u1", "NAND2X1", {"A": "a", "B": "n2", "Z": "n1"})
    mod.add_instance("u2", "NAND2X1", {"A": "n1", "B": "a", "Z": "n2"})
    mod.add_instance("u3", "BUFX1", {"A": "n1", "Z": "y"})
    report = analyze(mod, lib)
    assert report.broken_edge_count >= 1
    assert report.critical_delay > 0


def test_explicit_disable_prevents_path(lib):
    mod = Module("m")
    mod.add_port("a", PortDirection.INPUT)
    mod.add_port("y", PortDirection.OUTPUT)
    mod.add_instance("u1", "BUFX1", {"A": "a", "Z": "y"})
    blocked = analyze(mod, lib, disables=[("u1", "A", "Z")])
    open_report = analyze(mod, lib)
    assert open_report.critical_delay > 0
    assert blocked.critical_delay == 0


def test_region_restriction(lib):
    mod = chain_module(6)
    all_delay = analyze(mod, lib).critical_delay
    # region containing only the first two inverters and launch register
    sub = region_critical_path(mod, lib, {"r_in", "inv0", "inv1", "inv2"})
    assert 0 < sub < all_delay


def test_through_sequential_latch_transparency(lib):
    mod = Module("m")
    mod.add_port("a", PortDirection.INPUT)
    mod.add_port("g", PortDirection.INPUT)
    mod.add_port("y", PortDirection.OUTPUT)
    mod.add_instance("l1", "LDHX1", {"D": "a", "G": "g", "Q": "q1"})
    mod.add_instance("u1", "INVX1", {"A": "q1", "Z": "y"})
    stopped = build_timing_graph(mod, lib)
    transparent = build_timing_graph(mod, lib, through_sequential=True)
    assert ("l1", "D") in stopped.capture_nodes
    # in transparent mode, a D->Q edge exists
    dq = [
        e
        for e in transparent.adjacency.get(("l1", "D"), [])
        if e.dst == ("l1", "Q")
    ]
    assert dq, "latch D->Q transparency edge missing"
    # with a late-arriving input, the transparent view sees the full
    # a -> D -> Q -> inv -> y path; the stopped view ends at the D pin
    late_transparent = propagate(transparent, input_arrival=1.0)
    late_stopped = propagate(stopped, input_arrival=1.0)
    assert late_transparent.critical_delay > late_stopped.critical_delay


def test_wire_delay_annotation(lib):
    mod = chain_module(2)
    base = analyze(mod, lib).critical_delay
    mod.attributes["net_wire_delay"] = {"n0": 0.5}
    slow = analyze(mod, lib).critical_delay
    assert slow == pytest.approx(base + 0.5 * lib.corner("worst").derate, rel=1e-6)


# ----------------------------------------------------------------------
# SDC
# ----------------------------------------------------------------------

def test_sdc_round_trip():
    sdc = SdcFile()
    sdc.add(CreateClock("Clk", 2.4, (0.0, 1.2), ["clk"], "ports"))
    sdc.add(
        CreateClock(
            "ClkM", 2.4, (1.0, 2.4), ["G1_Ctrl/master/g_out/Z"], "pins"
        )
    )
    sdc.add(SetDisableTiming("G1_Ctrl/u_rx", from_pin="A", to_pin="Z"))
    sdc.add(SetDisableTiming("G1_Ctrl/u_ax", to_pin="B"))
    sdc.add(SetSizeOnly(["G1_Ctrl/u1", "G1_Ctrl/u2"]))
    sdc.add(PathDelay("max", 1.5, "G1_Ctrl/ro", "G2_Ctrl/ri"))
    text = sdc.to_text()
    again = SdcFile.parse(text)
    assert len(again.constraints) == len(sdc.constraints)
    clocks = again.clocks()
    assert clocks[0].name == "Clk" and clocks[0].period == pytest.approx(2.4)
    assert clocks[1].source_kind == "pins"
    disables = again.disable_tuples()
    assert ("G1_Ctrl/u_rx", "A", "Z") in disables
    assert ("G1_Ctrl/u_ax", None, "B") in disables
    assert "G1_Ctrl/u1" in again.size_only_cells()


def test_sdc_rejects_unknown_line():
    with pytest.raises(ValueError):
        SdcFile.parse("set_load 5 [get_nets n1]")
