"""Reactive handshake-environment tests (memory-backed designs)."""

import pytest

from repro.desync import Drdesync
from repro.designs import DlxMemories, assemble, dlx_core
from repro.designs.dlx_env import dlx_respond
from repro.liberty import core9_hs
from repro.sim import SimulationError, Simulator
from repro.sim.reactive import ReactiveEnvironment, _port_bit_regions

N = ("nop",)


@pytest.fixture(scope="module")
def lib():
    return core9_hs()


@pytest.fixture(scope="module")
def dlx_result(lib):
    module = dlx_core(lib, registers=8, multiplier=False, width=16)
    return Drdesync(lib).run(module)


def test_port_bits_map_to_sequential_regions(lib, dlx_result):
    mapping = _port_bit_regions(
        dlx_result.module, dlx_result.region_map, dlx_result.gatefile
    )
    # every pc bit traces to one region with latches
    pc_regions = {mapping.get(f"pc[{i}]") for i in range(16)}
    assert len(pc_regions) == 1
    region = pc_regions.pop()
    assert region is not None
    assert dlx_result.region_map.regions[region].sequential_instances(
        dlx_result.module, dlx_result.gatefile
    )
    # handshake ports themselves are not data and are excluded downstream
    assert "dmem_we" in mapping


def test_environment_runs_items_and_snapshots(lib, dlx_result):
    program = assemble([("addi", 1, 0, 3), N, N, N] * 2)
    simulator = Simulator(dlx_result.module, lib)
    env = ReactiveEnvironment.attach(
        simulator, dlx_result, dlx_respond(DlxMemories(program), width=16)
    )
    env.reset(0)
    consumed = env.run_items(6)
    assert consumed == 6
    # every output region produced at least items-1 snapshots
    for region in env._out_regions:
        assert len(env._snapshots[region]) >= 4
    # snapshots are item-aligned: pc strictly increases by one
    pc_bits = [f"pc[{i}]" for i in range(16)]
    pcs = []
    for item in range(5):
        snap = env._item_snapshot(item)
        value = 0
        for index, bit in enumerate(pc_bits):
            if snap.get(bit) is None:
                value = None
                break
            value |= snap[bit] << index
        if value is not None:
            pcs.append(value)
    assert pcs == sorted(pcs)
    assert len(set(pcs)) == len(pcs)


def test_environment_times_out_when_stalled(lib, dlx_result):
    program = assemble([("nop",)])
    simulator = Simulator(dlx_result.module, lib)
    env = ReactiveEnvironment.attach(
        simulator, dlx_result, dlx_respond(DlxMemories(program), width=16)
    )
    env.timeout = 30.0
    # never reset: the controllers hold X and the handshake cannot start
    simulator.set_input(env.reset_port, 0)
    for region in env._in_regions:
        simulator.set_input(env.env_ports[region]["ri"], 0)
    for region in env._out_regions:
        simulator.set_input(env.env_ports[region]["ao"], 0)
    env._reset_snapshot = {
        region: {} for region in env._out_regions
    }
    with pytest.raises(SimulationError):
        env.run_items(4)


def test_store_log_matches_between_runs(lib, dlx_result):
    """The same program commits the same stores in both worlds."""
    from repro.designs.dlx_env import dlx_sync_stimulus
    from repro.sim import SyncTestbench, initialize_registers
    from repro.sta import min_clock_period

    program = assemble([
        ("addi", 1, 0, 9), N, N, N,
        ("sw", 1, 0, 2), N, N, N,
        ("sw", 1, 1, 0), N, N, N,
    ])

    golden_module = dlx_core(lib, registers=8, multiplier=False, width=16)
    sync_sim = Simulator(golden_module, lib)
    sync_memories = DlxMemories(program)
    stimulus = dlx_sync_stimulus(sync_sim, sync_memories, width=16)
    initialize_registers(sync_sim, 0)
    bench = SyncTestbench(
        sync_sim, period=min_clock_period(golden_module, lib) * 1.5 + 0.5
    )
    bench.run_cycles(14, stimulus)

    desync_sim = Simulator(dlx_result.module, lib)
    desync_memories = DlxMemories(program)
    env = ReactiveEnvironment.attach(
        desync_sim, dlx_result, dlx_respond(desync_memories, width=16)
    )
    env.reset(0)
    env.run_items(14)

    assert sync_memories.store_log == desync_memories.store_log
    assert sync_memories.data == desync_memories.data
    assert desync_memories.data.get(2) == 9
