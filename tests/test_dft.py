"""DFT tests: scan insertion, chain shifting, fault grading."""

import pytest

from repro.desync import Drdesync
from repro.designs import counter, pipeline3
from repro.dft import (
    ScanError,
    enumerate_faults,
    generate_tests,
    insert_scan,
    random_patterns,
    shift_pattern_in,
)
from repro.liberty import CellKind, build_gatefile, core9_hs, is_scan_cell
from repro.netlist import Module, PortDirection
from repro.sim import Simulator, initialize_registers


@pytest.fixture(scope="module")
def lib():
    return core9_hs()


def test_scan_insertion_replaces_ffs(lib):
    mod = pipeline3(lib)
    result = insert_scan(mod, lib)
    assert result.replaced > 0
    for name in result.chain:
        cell = lib.cell(mod.instances[name].cell)
        assert is_scan_cell(cell)
    assert "scan_in" in mod.ports and "scan_en" in mod.ports
    assert mod.check() == []


def test_scan_chain_is_connected(lib):
    mod = counter(lib, width=4)
    result = insert_scan(mod, lib)
    previous = "scan_in"
    for name in result.chain:
        assert mod.instances[name].pins["SI"] == previous
        previous = mod.instances[name].pins["Q"]
    assert (result.scan_out, previous) in mod.assigns


def test_scan_shift_moves_data_through_chain(lib):
    mod = counter(lib, width=4)
    result = insert_scan(mod, lib)
    sim = Simulator(mod, lib)
    initialize_registers(sim, 0)
    sim.set_input("clk", 0)
    pattern = [1, 0, 1, 1]
    shift_pattern_in(sim, result, pattern, period=4.0)
    states = [sim._models[name].state for name in result.chain]
    assert states == pattern


def test_scan_on_empty_design_fails(lib):
    mod = Module("empty")
    mod.add_port("a", PortDirection.INPUT)
    mod.add_instance("u", "INVX1", {"A": "a", "Z": "y"})
    with pytest.raises(ScanError):
        insert_scan(mod, lib)


def test_fault_enumeration(lib):
    mod = pipeline3(lib)
    faults = enumerate_faults(mod, max_faults=50)
    assert len(faults) == 50
    assert all(f.stuck_at in (0, 1) for f in faults)


def test_random_patterns_cover_inputs(lib):
    mod = pipeline3(lib)
    patterns = random_patterns(mod, 4)
    assert len(patterns) == 4
    assert all("din[0]" in p for p in patterns)
    assert all("clk" not in p for p in patterns)


def test_fault_grading_detects_faults(lib):
    mod = pipeline3(lib, width=4)
    result = generate_tests(mod, lib, n_patterns=12, max_faults=30)
    assert result.total_faults == 30
    assert result.coverage > 0.3  # random patterns catch a good chunk
    assert result.detected + len(result.undetected) == result.total_faults


def test_scan_design_desynchronizes(lib):
    """The ARM path: scan insertion then single-region desync."""
    mod = pipeline3(lib, width=4)
    insert_scan(mod, lib)
    result = Drdesync(lib).run(mod)
    gatefile = result.gatefile
    for inst in mod.instances.values():
        if inst.cell in gatefile.cells:
            assert not gatefile.is_flip_flop(inst.cell)
    assert mod.check() == []
