#!/usr/bin/env python3
"""Variability tolerance study (sections 2.5 and 5.2.2, Figure 5.4).

Shows why desynchronization wins under process/voltage/temperature
variation: the synchronous clock must be signed off at the worst
corner, while the desynchronized circuit's delay elements sit on the
same die as the logic and track it.

The study (a) measures the desynchronized counter's cycle time by
simulation at both corners and with per-die Monte-Carlo derates, and
(b) runs the statistical comparison of Figure 5.4.
"""

from repro.desync import Drdesync
from repro.designs import counter
from repro.liberty import core9_hs
from repro.perf import measure_effective_period
from repro.sim import HandshakeTestbench, Simulator
from repro.variability import VariabilityModel, run_study


def measured_period(library, result, corner, derate_map=None):
    simulator = Simulator(
        result.module, library, corner=corner, derate_map=derate_map
    )
    bench = HandshakeTestbench(
        simulator, result.network.env_ports, result.network.reset_net
    )
    bench.apply_reset(0)
    bench.run_free(300.0)
    probe = next(n for n in simulator._models if n.endswith("_ls"))
    return measure_effective_period(simulator, probe)


def main() -> None:
    library = core9_hs()
    design = counter(library, width=8)
    result = Drdesync(library).run(design)

    print("free-running desynchronized counter, measured cycle time:")
    worst = measured_period(library, result, "worst")
    best = measured_period(library, result, "best")
    print(f"  worst corner : {worst:6.3f} ns")
    print(f"  best corner  : {best:6.3f} ns")
    print(f"  ratio        : {worst / best:6.2f} "
          "(tracks the library derate -- no retuning, no binning)")

    # per-die simulation: every instance gets its own intra-die factor
    model = VariabilityModel(sigma_inter=0.12, sigma_intra=0.04)
    chips = model.sample_chips(
        3, seed=42, instances=list(result.module.instances)
    )
    print("\nthree Monte-Carlo dies, instance-level derates, simulated:")
    for index, chip in enumerate(chips):
        derate_map = {
            name: chip.inter_die * factor
            for name, factor in chip.instance_factors.items()
        }
        period = measured_period(library, result, "best", derate_map)
        print(f"  die {index}: inter-die x{chip.inter_die:4.2f} "
              f"-> cycle {period:6.3f} ns")

    study = run_study(worst / library.corner("worst").derate,
                      model=model, n_chips=20000, margin=0.10)
    print("\nFigure 5.4 statistics (20000 dies):")
    print(f"  synchronous shipping period : {study.sync_period:6.3f} ns")
    print(f"  desynchronized mean period  : {study.mean_desync_period:6.3f} ns")
    print(f"  dies where desync is faster : "
          f"{study.fraction_desync_faster * 100:5.1f}%  (paper: ~90%)")


if __name__ == "__main__":
    main()
