#!/usr/bin/env python3
"""The DLX case study end to end (chapter 5 of the paper).

1. Generate the gate-level DLX processor.
2. Implement it synchronously (P&R, area/timing reports).
3. Implement it desynchronized (drdesync + the same backend).
4. Print the Table 5.1 style comparison.
5. Run the same program on both implementations and confirm
   flow-equivalence -- every flip-flop and its slave latch stored the
   same data sequence, instruction by instruction.

Use ``--full`` for the 32-bit, 32-register DLX (slower); the default is
the reduced 16-bit, 8-register variant.
"""

import argparse
import time

from repro.desync import Drdesync
from repro.designs import DlxMemories, assemble, dlx_core
from repro.designs.dlx_env import dlx_respond
from repro.flow import (
    compare_implementations,
    implement_desynchronized,
    implement_synchronous,
)
from repro.liberty import core9_hs
from repro.perf import effective_period_model
from repro.sim.flowequiv import check_flow_equivalence_reactive

N = ("nop",)
PROGRAM = assemble([
    ("addi", 1, 0, 5), ("addi", 2, 0, 7), N, N,
    ("add", 3, 1, 2), ("sub", 4, 2, 1), N, N,
    ("sw", 3, 0, 0), ("xor", 5, 3, 4), N, N,
    ("lw", 6, 0, 0), ("slt", 7, 4, 3), N, N,
])


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--full", action="store_true",
                        help="32-bit, 32-register DLX with multiplier")
    args = parser.parse_args()

    library = core9_hs()
    if args.full:
        build = lambda: dlx_core(library)
        width = 32
    else:
        build = lambda: dlx_core(
            library, registers=8, multiplier=False, width=16
        )
        width = 16

    sync_module = build()
    desync_module = sync_module.clone()
    golden = sync_module.clone()
    print(f"DLX generated: {len(sync_module.instances)} cells")

    started = time.time()
    sync = implement_synchronous(sync_module, library, target_utilization=0.95)
    print(f"synchronous flow done in {time.time() - started:.1f}s "
          f"(min clock period {sync.min_period:.2f} ns at worst case)")

    started = time.time()
    desync = implement_desynchronized(
        desync_module, library, target_utilization=0.91
    )
    print(f"desynchronization flow done in {time.time() - started:.1f}s")

    print()
    print(compare_implementations("DLX", sync, desync).to_text())

    period = effective_period_model(desync.desync, library, "worst")
    print(f"\neffective period (model, worst case): "
          f"{period.effective_period:.2f} ns "
          f"(critical region {period.critical_region})")

    def respond_factory(simulator):
        return dlx_respond(DlxMemories(PROGRAM), width=width)

    started = time.time()
    report = check_flow_equivalence_reactive(
        golden, desync.desync, library, cycles=14,
        respond_factory=respond_factory,
    )
    print(
        f"\nflow-equivalence over {report.cycles} instructions: "
        f"{report.compared} sequential elements compared -> "
        f"{'IDENTICAL SEQUENCES' if report.equivalent else 'MISMATCH'} "
        f"({time.time() - started:.1f}s)"
    )
    if not report.equivalent:
        for mismatch in report.mismatches[:5]:
            print("  ", mismatch)


if __name__ == "__main__":
    main()
