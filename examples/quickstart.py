#!/usr/bin/env python3
"""Quickstart: desynchronize a small pipeline and look at everything.

Builds a gate-level three-stage pipeline on the synthetic 90nm library,
runs the ``drdesync`` tool on it, prints what the tool did, verifies
flow-equivalence by simulation, and writes the exported artefacts
(Verilog netlist + SDC constraints) next to this script.
"""

import os

from repro.desync import Drdesync
from repro.designs import pipeline3
from repro.liberty import core9_hs
from repro.sim import check_flow_equivalence

HERE = os.path.dirname(os.path.abspath(__file__))


def main() -> None:
    library = core9_hs()
    design = pipeline3(library, width=8)
    golden = design.clone()  # keep the synchronous version for comparison

    print(f"synchronous design : {len(design.instances)} cells")

    tool = Drdesync(library)
    result = tool.run(design)

    print("\ndesynchronization summary:")
    for key, value in result.summary().items():
        print(f"  {key:22s} {value}")

    print("\nregions and matched delay elements:")
    for region, delay in sorted(result.network.region_delays.items()):
        element = result.network.delay_elements.get(region)
        if element is not None:
            print(
                f"  {region:4s} cloud delay {delay:6.3f} ns "
                f"-> delay element of {element.length} AND levels"
            )

    print("\ndata-dependency graph edges:")
    for src, dst in sorted(result.ddg.edges()):
        print(f"  {src} -> {dst}")

    # the central property: identical data sequences
    def stimulus(cycle):
        return {f"din[{i}]": ((37 * cycle + 5) >> i) & 1 for i in range(8)}

    report = check_flow_equivalence(
        golden, result, library, cycles=10, stimulus=stimulus
    )
    print(
        f"\nflow-equivalence: {report.compared} sequential elements "
        f"compared, {'OK' if report.equivalent else 'BROKEN'}"
    )

    verilog_path = os.path.join(HERE, "pipeline3_desync.v")
    sdc_path = os.path.join(HERE, "pipeline3_desync.sdc")
    with open(verilog_path, "w") as handle:
        handle.write(result.export_verilog())
    with open(sdc_path, "w") as handle:
        handle.write(result.export_sdc())
    print(f"\nwrote {verilog_path}")
    print(f"wrote {sdc_path}")


if __name__ == "__main__":
    main()
