#!/usr/bin/env python3
"""DFT through desynchronization (sections 4.3 and 2.1).

Desynchronization's testing argument: flow-equivalence means the same
synchronous test vectors keep working.  This example

1. inserts scan into a pipeline and grades random patterns against
   stuck-at faults on the synchronous design,
2. desynchronizes the scan design (the ARM path of section 5.3),
3. shows that the capture sequences -- what the tester would shift out
   -- stay byte-identical between the two implementations.
"""

from repro.desync import Drdesync
from repro.designs import pipeline3
from repro.dft import generate_tests, insert_scan
from repro.liberty import core9_hs
from repro.sim import check_flow_equivalence


def main() -> None:
    library = core9_hs()
    design = pipeline3(library, width=8)

    scan = insert_scan(design, library)
    print(f"scan inserted: {scan.replaced} flip-flops swapped, "
          f"chain of {len(scan.chain)}")

    atpg = generate_tests(design, library, n_patterns=24, max_faults=80)
    print(f"random-pattern test generation: {len(atpg.patterns)} patterns, "
          f"{atpg.detected}/{atpg.total_faults} stuck-at faults detected "
          f"({atpg.coverage * 100:.1f}% coverage)")

    golden = design.clone()
    result = Drdesync(library).run(design)
    print(f"desynchronized scan design: {len(design.instances)} cells, "
          f"{result.summary()['regions']} regions")

    def stimulus(cycle):
        values = {"scan_in": 0, "scan_en": 0}
        values.update(
            {f"din[{i}]": ((11 * cycle + 3) >> i) & 1 for i in range(8)}
        )
        return values

    report = check_flow_equivalence(
        golden, result, library, cycles=10, stimulus=stimulus
    )
    print(
        f"capture sequences compared for {report.compared} elements: "
        f"{'IDENTICAL' if report.equivalent else 'MISMATCH'} -- the "
        "synchronous test vectors remain valid for the desynchronized chip"
    )


if __name__ == "__main__":
    main()
