#!/usr/bin/env python3
"""Explore the desynchronization protocol zoo (Figure 2.4).

For each handshake protocol between two adjacent latch enables this
prints the reachable state count (the figure's concurrency annotation),
the liveness verdict in ring compositions of growing size, and the
flow-equivalence analysis -- including the counterexample trace when a
protocol overwrites or duplicates data.
"""

from repro.stg import PROTOCOL_LADDER, explore


def main() -> None:
    print(f"{'protocol':18s} {'states':>6s} {'pairwise':>9s} "
          f"{'ring2':>8s} {'ring4':>8s} {'ring6':>8s} {'flow-equivalence'}")
    for protocol in PROTOCOL_LADDER:
        states = protocol.state_count()
        live = "live" if protocol.is_live_pairwise() else "NOT live"
        rings = [protocol.ring_status(n) for n in (2, 4, 6)]
        violation = protocol.flow_violation()
        verdict = "OK" if violation is None else violation.kind.upper()
        print(f"{protocol.name:18s} {states:>6d} {live:>9s} "
              f"{rings[0]:>8s} {rings[1]:>8s} {rings[2]:>8s} {verdict}")
        if violation is not None and violation.trace:
            print(f"{'':18s} counterexample: "
                  + " -> ".join(violation.trace[:12]))

    print()
    print("ring state-space growth for the semi-decoupled protocol:")
    from repro.stg import SEMI_DECOUPLED

    for n in (2, 3, 4, 5, 6, 8):
        graph = explore(SEMI_DECOUPLED.ring_stg(n))
        print(f"  {n} latches -> {graph.state_count:6d} reachable states")

    print()
    print("why the usable band matters: a protocol above it overwrites")
    print("data (not flow-equivalent); one below it deadlocks when the")
    print("register ring closes (not live).  Everything in between is a")
    print("legal desynchronization target (section 2.2).")


if __name__ == "__main__":
    main()
